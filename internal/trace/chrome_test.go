package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWriteChromeTrace(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	tr.Record("initiator", "Kernel Launch", 0, 1500*sim.Nanosecond)
	tr.Record("initiator", "Kernel Execution", 1500*sim.Nanosecond, 2000*sim.Nanosecond)
	tr.Record("target", "Wait", 0, 2700*sim.Nanosecond)
	e.Go("m", func(p *sim.Proc) {
		p.Sleep(2700 * sim.Nanosecond)
		tr.MarkNow("target", "recv")
	})
	e.Run()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 metadata + 3 spans + 1 instant.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	var phases []string
	for _, ev := range events {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "X") || !strings.Contains(joined, "i") || !strings.Contains(joined, "M") {
		t.Fatalf("phases = %v", phases)
	}
	// Span timestamps are microseconds.
	for _, ev := range events {
		if ev["name"] == "Kernel Execution" {
			if ev["ts"].(float64) != 1.5 || ev["dur"].(float64) != 0.5 {
				t.Fatalf("exec ts/dur = %v/%v", ev["ts"], ev["dur"])
			}
		}
	}
}

func TestWriteChromeTraceDeterministicActorOrder(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	tr.Record("zeta", "a", 0, 1)
	tr.Record("alpha", "b", 0, 1)
	var buf1, buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("trace export not deterministic")
	}
}
