package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestNewSwitchPlanNilForZeroConfig(t *testing.T) {
	if NewSwitchPlan(config.SwitchConfig{}) != nil {
		t.Error("zero switch config built a plan")
	}
	// Nil plans are safe to use everywhere the cluster does.
	var p *SwitchPlan
	if got := p.Summary(); got != "switch failures: none" {
		t.Errorf("nil Summary() = %q", got)
	}
	p.Arm(sim.NewEngine(), nil, nil, nil, nil) // must not panic
}

func TestSwitchPlanArmSchedules(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.SwitchConfig{Events: []config.SwitchEvent{
		{Tier: config.SwitchTierSpine, Index: 1, At: 10 * sim.Microsecond, RestoreAfter: 5 * sim.Microsecond},
		{Tier: config.SwitchTierTrunk, A: "leaf0", B: "spine1", At: 20 * sim.Microsecond},
		{Tier: config.SwitchTierCore, Index: 0, At: 30 * sim.Microsecond},
	}}
	type call struct {
		op   string
		at   sim.Time
		args [4]int
	}
	var calls []call
	ref := func(tier string) int {
		switch tier {
		case config.SwitchTierLeaf:
			return 0
		case config.SwitchTierSpine:
			return 1
		default:
			return 2
		}
	}
	NewSwitchPlan(cfg).Arm(eng,
		func(tier string, idx int) {
			calls = append(calls, call{"kill", eng.Now(), [4]int{ref(tier), idx}})
		},
		func(tier string, idx int) {
			calls = append(calls, call{"restore", eng.Now(), [4]int{ref(tier), idx}})
		},
		func(aT string, aI int, bT string, bI int) {
			calls = append(calls, call{"killTrunk", eng.Now(), [4]int{ref(aT), aI, ref(bT), bI}})
		},
		func(aT string, aI int, bT string, bI int) {
			calls = append(calls, call{"restoreTrunk", eng.Now(), [4]int{ref(aT), aI, ref(bT), bI}})
		})
	eng.Run()
	want := []call{
		{"kill", 10 * sim.Microsecond, [4]int{1, 1, 0, 0}},
		{"restore", 15 * sim.Microsecond, [4]int{1, 1, 0, 0}},
		{"killTrunk", 20 * sim.Microsecond, [4]int{0, 0, 1, 1}},
		{"kill", 30 * sim.Microsecond, [4]int{2, 0, 0, 0}},
	}
	if !reflect.DeepEqual(calls, want) {
		t.Errorf("armed calls:\n got %+v\nwant %+v", calls, want)
	}
}

func TestSwitchPlanSummary(t *testing.T) {
	p := NewSwitchPlan(config.SwitchConfig{Events: []config.SwitchEvent{
		{Tier: config.SwitchTierSpine, Index: 1, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
		{Tier: config.SwitchTierTrunk, A: "leaf0", B: "spine1", At: 5 * sim.Microsecond},
	}})
	got := p.Summary()
	for _, want := range []string{"spine1 @70us", "(restore +60us)", "trunk leaf0-spine1 @5us", "(no restore)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary() = %q, missing %q", got, want)
		}
	}
}

// fatTreeScenarioConfig returns a 16-node-ready config with the fat-tree
// topology armed (default shape: 4 leaves, 2 pods, 4 pod-spines, 2 cores).
func fatTreeScenarioConfig() config.SystemConfig {
	cfg := config.Default()
	cfg.Network.Topology = config.TopologyFatTree
	return cfg
}

func TestApplyScenarioSwitchFail(t *testing.T) {
	cfg := fatTreeScenarioConfig()
	cfg.Scenario = config.ScenarioConfig{
		Events: []config.ScenarioEvent{
			{Kind: config.ScenarioSwitchFail, Domain: "spine1",
				At: 70 * sim.Microsecond, Heal: 60 * sim.Microsecond},
			{Kind: config.ScenarioSwitchFail, Domain: "core0", At: 90 * sim.Microsecond},
		},
	}
	s, err := ApplyScenario(&cfg, 16)
	if err != nil {
		t.Fatalf("ApplyScenario: %v", err)
	}
	want := []config.SwitchEvent{
		{Tier: config.SwitchTierSpine, Index: 1, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
		{Tier: config.SwitchTierCore, Index: 0, At: 90 * sim.Microsecond},
	}
	if !reflect.DeepEqual(cfg.Faults.Switch.Events, want) {
		t.Errorf("switch events = %+v", cfg.Faults.Switch.Events)
	}
	if len(cfg.Crash.Events) != 0 {
		t.Errorf("switchfail crashed nodes: %+v", cfg.Crash.Events)
	}
	if got := s.Summary(); got != "scenario: domains=0 events=2 switch-kills=2" {
		t.Errorf("Summary() = %q", got)
	}
}

func TestApplyScenarioPodFail(t *testing.T) {
	cfg := fatTreeScenarioConfig()
	cfg.Scenario = config.ScenarioConfig{
		Seed: 3,
		Events: []config.ScenarioEvent{
			{Kind: config.ScenarioPodFail, Domain: "pod1",
				At: 70 * sim.Microsecond, Heal: 60 * sim.Microsecond, Jitter: 10 * sim.Microsecond},
		},
	}
	s, err := ApplyScenario(&cfg, 16)
	if err != nil {
		t.Fatalf("ApplyScenario: %v", err)
	}
	// Pod 1 of the default 16-node shape: leaves 2-3, spines 2-3, nodes 8-15.
	wantSwitch := []config.SwitchEvent{
		{Tier: config.SwitchTierLeaf, Index: 2, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
		{Tier: config.SwitchTierLeaf, Index: 3, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
		{Tier: config.SwitchTierSpine, Index: 2, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
		{Tier: config.SwitchTierSpine, Index: 3, At: 70 * sim.Microsecond, RestoreAfter: 60 * sim.Microsecond},
	}
	if !reflect.DeepEqual(cfg.Faults.Switch.Events, wantSwitch) {
		t.Errorf("switch events = %+v\nwant %+v", cfg.Faults.Switch.Events, wantSwitch)
	}
	if len(cfg.Crash.Events) != 8 {
		t.Fatalf("crash events = %+v, want 8 (nodes 8-15)", cfg.Crash.Events)
	}
	for i, ce := range cfg.Crash.Events {
		if ce.Node != 8+i || ce.At != 70*sim.Microsecond {
			t.Errorf("crash[%d] = %+v, want node %d at 70us", i, ce, 8+i)
		}
		if ce.RestartAfter < 60*sim.Microsecond || ce.RestartAfter > 70*sim.Microsecond {
			t.Errorf("crash[%d].RestartAfter = %v outside [heal, heal+jitter]", i, ce.RestartAfter)
		}
	}
	if got := s.Summary(); got != "scenario: domains=0 events=1 crashes=8 restarts=8 switch-kills=4" {
		t.Errorf("Summary() = %q", got)
	}
}

func TestApplyScenarioSwitchKindErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config.SystemConfig)
		want   string
	}{
		{"switchfail on star", func(c *config.SystemConfig) {
			c.Network.Topology = config.TopologyStar
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioSwitchFail, Domain: "spine0", At: sim.Microsecond}}
		}, "requires Network.Topology"},
		{"podfail on star", func(c *config.SystemConfig) {
			c.Network.Topology = config.TopologyStar
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioPodFail, Domain: "pod0", At: sim.Microsecond}}
		}, "requires Network.Topology"},
		{"spine out of range", func(c *config.SystemConfig) {
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioSwitchFail, Domain: "spine99", At: sim.Microsecond}}
		}, "the fat-tree has"},
		{"leaf out of range", func(c *config.SystemConfig) {
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioSwitchFail, Domain: "leaf9", At: sim.Microsecond}}
		}, "the fat-tree has"},
		{"core out of range", func(c *config.SystemConfig) {
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioSwitchFail, Domain: "core7", At: sim.Microsecond}}
		}, "the fat-tree has"},
		{"pod out of range", func(c *config.SystemConfig) {
			c.Scenario.Events = []config.ScenarioEvent{
				{Kind: config.ScenarioPodFail, Domain: "pod9", At: sim.Microsecond}}
		}, "pods"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fatTreeScenarioConfig()
			tc.mutate(&cfg)
			_, err := ApplyScenario(&cfg, 16)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ApplyScenario = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
