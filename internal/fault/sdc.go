// Silent-data-corruption (SDC) injection: corruption the link checksum
// does NOT catch. Three deterministic classes — silent wire corruption
// (payload bits flip, the link Corrupt flag stays clear), buffer
// corruption at rest (a designated node's send buffer flips bits between
// compute and DMA), and a faulty reducer (a rank whose reduction combines
// produce wrong values during a window). The plan owns a private RNG
// seeded from SDCConfig.Seed, so arming SDC never shifts the main
// injector's draw stream; the zero-valued config compiles to a nil plan
// that draws nothing and keeps the trace bit-for-bit (tested).
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/config"
	"repro/internal/sim"
)

// SDCStats counts injected silent corruptions by class.
type SDCStats struct {
	// WireCorruptions counts packets silently corrupted on the wire.
	WireCorruptions int64
	// BufferCorruptions counts sends whose source buffer corrupted at rest.
	BufferCorruptions int64
	// ReducerCorruptions counts reduction combines the faulty rank botched.
	ReducerCorruptions int64
}

// Total returns the number of injected corruptions across all classes.
func (s SDCStats) Total() int64 {
	return s.WireCorruptions + s.BufferCorruptions + s.ReducerCorruptions
}

// SDCPlan is the compiled silent-data-corruption schedule. A nil plan is a
// valid no-op receiver; NewSDCPlan returns nil for a disabled config so
// the fault-free paths stay draw-free.
type SDCPlan struct {
	cfg     config.SDCConfig
	rng     *rand.Rand
	stats   SDCStats
	firstAt sim.Time
	hasAny  bool

	// sharded mode (nil/empty when off): per-node streams, counters, and
	// first-injection watermarks, aggregated on read. See Injector.Shard.
	nodeRngs  []*rand.Rand
	nodeStats []SDCStats
	nodeFirst []sim.Time
	nodeHas   []bool
}

// Shard switches the plan to per-node corruption streams for n nodes.
func (p *SDCPlan) Shard(n int) {
	if p == nil {
		return
	}
	p.nodeRngs = make([]*rand.Rand, n)
	for i := range p.nodeRngs {
		p.nodeRngs[i] = rand.New(rand.NewSource(shardSeed(p.cfg.Seed, i)))
	}
	p.nodeStats = make([]SDCStats, n)
	p.nodeFirst = make([]sim.Time, n)
	p.nodeHas = make([]bool, n)
}

func (p *SDCPlan) r(node int) *rand.Rand {
	if p.nodeRngs != nil {
		return p.nodeRngs[node]
	}
	return p.rng
}

func (p *SDCPlan) st(node int) *SDCStats {
	if p.nodeStats != nil {
		return &p.nodeStats[node]
	}
	return &p.stats
}

// NewSDCPlan compiles an SDC schedule; nil when nothing is armed.
func NewSDCPlan(cfg config.SDCConfig) *SDCPlan {
	if !cfg.Enabled() {
		return nil
	}
	return &SDCPlan{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Config returns the plan's configuration (zero for nil).
func (p *SDCPlan) Config() config.SDCConfig {
	if p == nil {
		return config.SDCConfig{}
	}
	return p.cfg
}

// Stats returns a snapshot of the injected-corruption counters, aggregated
// across per-node blocks in sharded mode.
func (p *SDCPlan) Stats() SDCStats {
	if p == nil {
		return SDCStats{}
	}
	out := p.stats
	for _, s := range p.nodeStats {
		out.WireCorruptions += s.WireCorruptions
		out.BufferCorruptions += s.BufferCorruptions
		out.ReducerCorruptions += s.ReducerCorruptions
	}
	return out
}

// FirstInjectionAt returns the simulated time of the first injected
// corruption of any class; ok is false when nothing has been injected.
// Ablations subtract it from the first detection time to report detection
// latency.
func (p *SDCPlan) FirstInjectionAt() (sim.Time, bool) {
	if p == nil {
		return 0, false
	}
	first, ok := p.firstAt, p.hasAny
	for i, has := range p.nodeHas {
		if has && (!ok || p.nodeFirst[i] < first) {
			first, ok = p.nodeFirst[i], true
		}
	}
	if !ok {
		return 0, false
	}
	return first, true
}

func (p *SDCPlan) note(now sim.Time, node int) {
	if p.nodeHas != nil {
		if !p.nodeHas[node] {
			p.nodeHas[node] = true
			p.nodeFirst[node] = now
		}
		return
	}
	if !p.hasAny {
		p.hasAny = true
		p.firstAt = now
	}
}

// WirePacket decides whether one delivered packet is silently corrupted on
// the wire. The draw happens only when the wire class is armed, so buffer-
// or reducer-only plans keep the packet path draw-free.
func (p *SDCPlan) WirePacket(now sim.Time, src, dst int) bool {
	if p == nil || p.cfg.WireProb <= 0 {
		return false
	}
	// Drawn at the source's egress — attributes to src in sharded mode.
	if p.r(src).Float64() >= p.cfg.WireProb {
		return false
	}
	p.st(src).WireCorruptions++
	p.note(now, src)
	return true
}

// BufferCorrupt decides whether one send from the given node reads a
// buffer that corrupted at rest. Only the designated node ever draws.
func (p *SDCPlan) BufferCorrupt(now sim.Time, node int) bool {
	if p == nil || p.cfg.BufferProb <= 0 || node != p.cfg.BufferNode {
		return false
	}
	if p.r(node).Float64() >= p.cfg.BufferProb {
		return false
	}
	p.st(node).BufferCorruptions++
	p.note(now, node)
	return true
}

// FaultyReducer reports whether the given rank's reduction combines are
// wrong at time now. RNG-free: the window is a deterministic schedule.
func (p *SDCPlan) FaultyReducer(now sim.Time, rank int) bool {
	if p == nil || rank != p.cfg.FaultyRank {
		return false
	}
	if now < p.cfg.FaultyFrom || now >= p.cfg.FaultyUntil {
		return false
	}
	p.st(rank).ReducerCorruptions++
	p.note(now, rank)
	return true
}

// Summary renders the schedule for run headers; empty for nil.
func (p *SDCPlan) Summary() string {
	if p == nil {
		return ""
	}
	c := &p.cfg
	s := fmt.Sprintf("sdc[seed=%d", c.Seed)
	if c.WireProb > 0 {
		s += fmt.Sprintf(" wire=%.2f%%", 100*c.WireProb)
	}
	if c.BufferProb > 0 {
		s += fmt.Sprintf(" buffer[node %d]=%.2f%%", c.BufferNode, 100*c.BufferProb)
	}
	if c.FaultyUntil > c.FaultyFrom {
		s += fmt.Sprintf(" reducer[rank %d %v..%v]", c.FaultyRank, c.FaultyFrom, c.FaultyUntil)
	}
	return s + "]"
}

// CorruptFloat32 deterministically corrupts one float32: it flips a high
// mantissa bit, a change large enough to fail any sum check while keeping
// the value finite. RNG-free so callers corrupt values without consuming
// plan draws.
func CorruptFloat32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) ^ (1 << 22))
}
