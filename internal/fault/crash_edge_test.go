package fault

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// RestartAfter 0 means crash-stop forever: the crash callback fires, the
// restart callback never does.
func TestCrashPlanZeroRestartDelayNeverRestarts(t *testing.T) {
	eng := sim.NewEngine()
	p := NewCrashPlan(config.CrashConfig{Events: []config.CrashEvent{
		{Node: 1, At: 5 * sim.Microsecond},
	}})
	var crashes, restarts int
	p.Arm(eng, func(node int) { crashes++ }, func(node int) { restarts++ })
	eng.Run()
	if crashes != 1 {
		t.Fatalf("crashes = %d, want 1", crashes)
	}
	if restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (RestartAfter unset)", restarts)
	}
}

// Two crash events for the same node in one run fire independently, each
// at its own instant, with the restart between them at crash+delay.
func TestCrashPlanTwoCrashesSameNode(t *testing.T) {
	eng := sim.NewEngine()
	p := NewCrashPlan(config.CrashConfig{Events: []config.CrashEvent{
		{Node: 2, At: 10 * sim.Microsecond, RestartAfter: 20 * sim.Microsecond},
		{Node: 2, At: 50 * sim.Microsecond},
	}})
	type mark struct {
		kind string
		at   sim.Time
	}
	var marks []mark
	p.Arm(eng,
		func(node int) { marks = append(marks, mark{"crash", eng.Now()}) },
		func(node int) { marks = append(marks, mark{"restart", eng.Now()}) })
	eng.Run()
	want := []mark{
		{"crash", 10 * sim.Microsecond},
		{"restart", 30 * sim.Microsecond},
		{"crash", 50 * sim.Microsecond},
	}
	if len(marks) != len(want) {
		t.Fatalf("events %v, want %v", marks, want)
	}
	for i, w := range want {
		if marks[i] != w {
			t.Fatalf("event %d = %v, want %v", i, marks[i], w)
		}
	}
}

// Arm schedules relative to the engine's current time, so a plan armed
// mid-run still crashes at the event's absolute instant.
func TestCrashPlanArmMidRunKeepsAbsoluteTimes(t *testing.T) {
	eng := sim.NewEngine()
	p := NewCrashPlan(config.CrashConfig{Events: []config.CrashEvent{
		{Node: 0, At: 40 * sim.Microsecond},
	}})
	var at sim.Time
	eng.Go("armer", func(proc *sim.Proc) {
		proc.Sleep(15 * sim.Microsecond)
		p.Arm(eng, func(node int) { at = eng.Now() }, func(int) {})
	})
	eng.Run()
	if at != 40*sim.Microsecond {
		t.Fatalf("crash fired at %v, want the absolute 40µs", at)
	}
}
