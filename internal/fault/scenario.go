// Scenario composition: correlated multi-class failures over named
// failure domains.
//
// A config.ScenarioConfig describes *what* fails together (a rack crash
// that also cuts the rack's links, a gray ToR plus stragglers on the same
// nodes, a restart storm after a heal); this file compiles that timeline
// into the existing single-class plan schedules — CrashConfig,
// PartitionConfig, DegradeConfig, SlowConfig — before any plan is built.
// Compilation is a pure config-to-config expansion: each sub-plan still
// draws from its own private RNG stream, so composing a scenario never
// perturbs the injector, SDC, or slow-plan streams, a zero-valued
// ScenarioConfig leaves the config bit-for-bit untouched, and laned runs
// stay shard-count invariant for free (the expanded schedules are the
// same deterministic inputs the plans already handle).
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
)

// scenarioSeedSalt decorrelates the scenario's private jitter stream from
// the injector (seed), SDC, and slow streams derived from nearby seeds.
const scenarioSeedSalt = 0x5CE7A210

// Scenario is a compiled correlated-failure timeline: bookkeeping about
// what ApplyScenario expanded, kept on the cluster for reporting.
type Scenario struct {
	cfg         config.ScenarioConfig
	crashes     int // crash-stop events scheduled
	restarts    int // of which restart (storm members)
	cuts        int // partition events scheduled
	grays       int // degrade windows scheduled
	slows       int // slow windows scheduled
	switchKills int // switch/trunk failure events scheduled
}

// ApplyScenario expands cfg.Scenario into the single-class plan schedules
// inside cfg (Crash.Events, Faults.Partition.Events, Faults.Degrade.Windows,
// Faults.Slow.Windows) for a cluster of n nodes. It returns nil for a
// zero-valued scenario without touching cfg. Expansion order is
// deterministic — events in declaration order, domain nodes ascending —
// and restart-storm jitter draws come from a private RNG seeded by
// Scenario.Seed, so the same scenario always compiles to the same
// schedules.
func ApplyScenario(cfg *config.SystemConfig, n int) (*Scenario, error) {
	sc := cfg.Scenario
	if !sc.Enabled() {
		return nil, nil
	}
	if max := sc.MaxNode(); max >= n {
		return nil, fmt.Errorf("fault: scenario references node %d but the cluster has %d nodes", max, n)
	}
	s := &Scenario{cfg: sc}
	// The jitter stream is private to the scenario: created lazily so a
	// jitter-free scenario draws nothing, and advanced in deterministic
	// (event, sorted-node) order.
	var rng *rand.Rand
	jitter := func(span sim.Time) sim.Time {
		if span <= 0 {
			return 0
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(sc.Seed + scenarioSeedSalt))
		}
		return sim.Time(rng.Int63n(int64(span) + 1))
	}
	for _, ev := range sc.Events {
		nodes := sc.DomainNodes(ev.Domain)
		switch ev.Kind {
		case config.ScenarioCrash, config.ScenarioRackFail:
			for _, node := range nodes {
				ce := config.CrashEvent{Node: node, At: ev.At}
				if ev.Heal > 0 {
					ce.RestartAfter = ev.Heal + jitter(ev.Jitter)
					s.restarts++
				}
				cfg.Crash.Events = append(cfg.Crash.Events, ce)
				s.crashes++
			}
			if ev.Kind == config.ScenarioRackFail {
				cfg.Faults.Partition.Events = append(cfg.Faults.Partition.Events, config.PartitionEvent{
					A: nodes, At: ev.At, HealAfter: ev.Heal,
				})
				s.cuts++
			}
		case config.ScenarioCut:
			cfg.Faults.Partition.Events = append(cfg.Faults.Partition.Events, config.PartitionEvent{
				A: nodes, At: ev.At, HealAfter: ev.Heal, Asymmetric: ev.Asymmetric,
			})
			s.cuts++
		case config.ScenarioGray:
			for _, node := range nodes {
				out := config.DegradeWindow{
					Src: node, Dst: -1, From: ev.At, Until: ev.At + ev.Heal,
					LatencyFactor: ev.LatencyFactor, LossProb: ev.LossProb,
				}
				in := out
				in.Src, in.Dst = -1, node
				cfg.Faults.Degrade.Windows = append(cfg.Faults.Degrade.Windows, out, in)
				s.grays += 2
			}
		case config.ScenarioSlow:
			for _, node := range nodes {
				cfg.Faults.Slow.Windows = append(cfg.Faults.Slow.Windows, config.SlowWindow{
					Node: node, From: ev.At, Until: ev.At + ev.Heal,
					GPUFactor: ev.GPUFactor, CmdFactor: ev.CmdFactor, DMAFactor: ev.DMAFactor,
				})
				s.slows++
			}
		case config.ScenarioSwitchFail:
			if cfg.Network.Topology != config.TopologyFatTree {
				return nil, fmt.Errorf("fault: switchfail scenario requires Network.Topology = %q", config.TopologyFatTree)
			}
			tier, idx, err := config.ParseSwitchRef(ev.Domain)
			if err != nil {
				return nil, err
			}
			if err := checkSwitchIndex(cfg.Network.FatTree, n, tier, idx); err != nil {
				return nil, err
			}
			cfg.Faults.Switch.Events = append(cfg.Faults.Switch.Events, config.SwitchEvent{
				Tier: tier, Index: idx, At: ev.At, RestoreAfter: ev.Heal,
			})
			s.switchKills++
		case config.ScenarioPodFail:
			// The pod loses power: its leaf and spine switches die together
			// with its nodes. Heal restores the switches and lands the node
			// restart storm jittered around the same instant.
			if cfg.Network.Topology != config.TopologyFatTree {
				return nil, fmt.Errorf("fault: podfail scenario requires Network.Topology = %q", config.TopologyFatTree)
			}
			pod, _ := config.ParseScenarioPod(ev.Domain)
			topo := cfg.Network.FatTree.WithDefaults()
			if pod >= topo.Pods(n) {
				return nil, fmt.Errorf("fault: podfail references pod %d but the fat-tree has %d pods", pod, topo.Pods(n))
			}
			for l := pod * topo.PodLeaves; l < (pod+1)*topo.PodLeaves && l < topo.Leaves(n); l++ {
				cfg.Faults.Switch.Events = append(cfg.Faults.Switch.Events, config.SwitchEvent{
					Tier: config.SwitchTierLeaf, Index: l, At: ev.At, RestoreAfter: ev.Heal,
				})
				s.switchKills++
			}
			for sp := pod * topo.Spines; sp < (pod+1)*topo.Spines; sp++ {
				cfg.Faults.Switch.Events = append(cfg.Faults.Switch.Events, config.SwitchEvent{
					Tier: config.SwitchTierSpine, Index: sp, At: ev.At, RestoreAfter: ev.Heal,
				})
				s.switchKills++
			}
			for _, node := range topo.PodNodes(pod, n) {
				ce := config.CrashEvent{Node: node, At: ev.At}
				if ev.Heal > 0 {
					ce.RestartAfter = ev.Heal + jitter(ev.Jitter)
					s.restarts++
				}
				cfg.Crash.Events = append(cfg.Crash.Events, ce)
				s.crashes++
			}
		default:
			// Unreachable after config validation; keep the compiler honest.
			return nil, fmt.Errorf("fault: scenario event kind %q", ev.Kind)
		}
	}
	return s, nil
}

// Summary renders one line of compiled-scenario accounting for trace
// output, e.g. "scenario: domains=2 events=3 crashes=4 restarts=4 cuts=1".
func (s *Scenario) Summary() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: domains=%d events=%d", len(s.cfg.Domains), len(s.cfg.Events))
	if s.crashes > 0 {
		fmt.Fprintf(&b, " crashes=%d restarts=%d", s.crashes, s.restarts)
	}
	if s.cuts > 0 {
		fmt.Fprintf(&b, " cuts=%d", s.cuts)
	}
	if s.grays > 0 {
		fmt.Fprintf(&b, " gray-links=%d", s.grays)
	}
	if s.slows > 0 {
		fmt.Fprintf(&b, " slow-windows=%d", s.slows)
	}
	if s.switchKills > 0 {
		fmt.Fprintf(&b, " switch-kills=%d", s.switchKills)
	}
	return b.String()
}

// checkSwitchIndex bounds a switchfail ref against the fat-tree shape the
// cluster will build for n nodes.
func checkSwitchIndex(topo config.TopologyConfig, n int, tier string, idx int) error {
	topo = topo.WithDefaults()
	var have int
	switch tier {
	case config.SwitchTierLeaf:
		have = topo.Leaves(n)
	case config.SwitchTierSpine:
		have = topo.Pods(n) * topo.Spines
	case config.SwitchTierCore:
		have = topo.Cores
	default:
		return fmt.Errorf("fault: switchfail tier %q", tier)
	}
	if idx >= have {
		return fmt.Errorf("fault: switchfail references %s%d but the fat-tree has %d", tier, idx, have)
	}
	return nil
}

// Config returns the source scenario.
func (s *Scenario) Config() config.ScenarioConfig { return s.cfg }
