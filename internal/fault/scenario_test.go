package fault

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestApplyScenarioZeroValueUntouched(t *testing.T) {
	cfg := config.Default()
	want := cfg
	s, err := ApplyScenario(&cfg, 4)
	if err != nil {
		t.Fatalf("ApplyScenario: %v", err)
	}
	if s != nil {
		t.Errorf("zero scenario compiled to %+v", s)
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("zero scenario mutated the config:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestApplyScenarioTooSmallCluster(t *testing.T) {
	cfg := config.Default()
	cfg.Scenario = config.ScenarioConfig{
		Domains: []config.ScenarioDomain{{Name: "d", Nodes: []int{0, 7}}},
		Events:  []config.ScenarioEvent{{Kind: config.ScenarioCut, Domain: "d", At: sim.Microsecond}},
	}
	if _, err := ApplyScenario(&cfg, 4); err == nil {
		t.Error("scenario referencing node 7 accepted on a 4-node cluster")
	}
}

func TestApplyScenarioRackFail(t *testing.T) {
	cfg := config.Default()
	cfg.Scenario = config.ScenarioConfig{
		Seed:    7,
		Domains: []config.ScenarioDomain{{Name: "rack0", Nodes: []int{3, 1, 0, 2}}},
		Events: []config.ScenarioEvent{{
			Kind: config.ScenarioRackFail, Domain: "rack0",
			At: 70 * sim.Microsecond, Heal: 60 * sim.Microsecond, Jitter: 10 * sim.Microsecond,
		}},
	}
	s, err := ApplyScenario(&cfg, 8)
	if err != nil {
		t.Fatalf("ApplyScenario: %v", err)
	}
	// One crash per domain node in ascending order, each restarting with a
	// jittered delay in [Heal, Heal+Jitter].
	if len(cfg.Crash.Events) != 4 {
		t.Fatalf("crash events = %+v, want 4", cfg.Crash.Events)
	}
	for i, ce := range cfg.Crash.Events {
		if ce.Node != i || ce.At != 70*sim.Microsecond {
			t.Errorf("crash[%d] = %+v, want node %d at 70us", i, ce, i)
		}
		if ce.RestartAfter < 60*sim.Microsecond || ce.RestartAfter > 70*sim.Microsecond {
			t.Errorf("crash[%d].RestartAfter = %v outside [heal, heal+jitter]", i, ce.RestartAfter)
		}
	}
	// The correlated cut: the whole domain vs everyone else, healing with
	// the restart storm.
	cuts := cfg.Faults.Partition.Events
	if len(cuts) != 1 {
		t.Fatalf("partition events = %+v, want 1", cuts)
	}
	if !reflect.DeepEqual(cuts[0].A, []int{0, 1, 2, 3}) || cuts[0].At != 70*sim.Microsecond ||
		cuts[0].HealAfter != 60*sim.Microsecond || cuts[0].Asymmetric {
		t.Errorf("cut = %+v", cuts[0])
	}
	if s.Summary() != "scenario: domains=1 events=1 crashes=4 restarts=4 cuts=1" {
		t.Errorf("Summary() = %q", s.Summary())
	}
}

func TestApplyScenarioJitterDeterministic(t *testing.T) {
	build := func(seed int64) []config.CrashEvent {
		cfg := config.Default()
		cfg.Scenario = config.ScenarioConfig{
			Seed:    seed,
			Domains: []config.ScenarioDomain{{Name: "d", Nodes: []int{0, 1, 2, 3}}},
			Events: []config.ScenarioEvent{{
				Kind: config.ScenarioCrash, Domain: "d",
				At: 50 * sim.Microsecond, Heal: 30 * sim.Microsecond, Jitter: 20 * sim.Microsecond,
			}},
		}
		if _, err := ApplyScenario(&cfg, 4); err != nil {
			t.Fatalf("ApplyScenario: %v", err)
		}
		return cfg.Crash.Events
	}
	a, b := build(7), build(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed expanded differently:\n%+v\n%+v", a, b)
	}
	if reflect.DeepEqual(a, build(8)) {
		t.Error("different seeds drew identical jitter (suspicious)")
	}
	// The storm actually spreads: not every node restarts at the same time.
	spread := false
	for _, ce := range a[1:] {
		if ce.RestartAfter != a[0].RestartAfter {
			spread = true
		}
	}
	if !spread {
		t.Errorf("no jitter spread in %+v", a)
	}
}

func TestApplyScenarioGraySlowCut(t *testing.T) {
	cfg := config.Default()
	cfg.Scenario = config.ScenarioConfig{
		Domains: []config.ScenarioDomain{
			{Name: "pair", Nodes: []int{2, 5}},
			{Name: "rack1", Nodes: []int{4, 5, 6, 7}},
		},
		Events: []config.ScenarioEvent{
			{Kind: config.ScenarioGray, Domain: "pair", At: 10 * sim.Microsecond,
				Heal: 100 * sim.Microsecond, LatencyFactor: 10, LossProb: 0.05},
			{Kind: config.ScenarioSlow, Domain: "pair", At: 5 * sim.Microsecond,
				Heal: 50 * sim.Microsecond, GPUFactor: 8},
			{Kind: config.ScenarioCut, Domain: "rack1", At: 30 * sim.Microsecond,
				Heal: 40 * sim.Microsecond, Asymmetric: true},
		},
	}
	s, err := ApplyScenario(&cfg, 8)
	if err != nil {
		t.Fatalf("ApplyScenario: %v", err)
	}
	// Gray: an outbound and an inbound window per domain node.
	want := []config.DegradeWindow{
		{Src: 2, Dst: -1, From: 10 * sim.Microsecond, Until: 110 * sim.Microsecond, LatencyFactor: 10, LossProb: 0.05},
		{Src: -1, Dst: 2, From: 10 * sim.Microsecond, Until: 110 * sim.Microsecond, LatencyFactor: 10, LossProb: 0.05},
		{Src: 5, Dst: -1, From: 10 * sim.Microsecond, Until: 110 * sim.Microsecond, LatencyFactor: 10, LossProb: 0.05},
		{Src: -1, Dst: 5, From: 10 * sim.Microsecond, Until: 110 * sim.Microsecond, LatencyFactor: 10, LossProb: 0.05},
	}
	if !reflect.DeepEqual(cfg.Faults.Degrade.Windows, want) {
		t.Errorf("degrade windows = %+v", cfg.Faults.Degrade.Windows)
	}
	// Slow: one window per domain node.
	wantSlow := []config.SlowWindow{
		{Node: 2, From: 5 * sim.Microsecond, Until: 55 * sim.Microsecond, GPUFactor: 8},
		{Node: 5, From: 5 * sim.Microsecond, Until: 55 * sim.Microsecond, GPUFactor: 8},
	}
	if !reflect.DeepEqual(cfg.Faults.Slow.Windows, wantSlow) {
		t.Errorf("slow windows = %+v", cfg.Faults.Slow.Windows)
	}
	// Cut: one partition event, asymmetric preserved.
	cuts := cfg.Faults.Partition.Events
	if len(cuts) != 1 || !cuts[0].Asymmetric || !reflect.DeepEqual(cuts[0].A, []int{4, 5, 6, 7}) {
		t.Errorf("partition events = %+v", cuts)
	}
	if len(cfg.Crash.Events) != 0 {
		t.Errorf("crash events = %+v, want none", cfg.Crash.Events)
	}
	if got := s.Summary(); got != "scenario: domains=2 events=3 cuts=1 gray-links=4 slow-windows=2" {
		t.Errorf("Summary() = %q", got)
	}
	if !reflect.DeepEqual(s.Config(), cfg.Scenario) {
		t.Error("Config() does not return the source scenario")
	}
}

func TestApplyScenarioJitterFreeDrawsNothing(t *testing.T) {
	// Two scenarios with different seeds but no jitter must expand
	// identically: the RNG is lazy, so a jitter-free scenario draws nothing.
	build := func(seed int64) config.SystemConfig {
		cfg := config.Default()
		cfg.Scenario = config.ScenarioConfig{
			Seed:    seed,
			Domains: []config.ScenarioDomain{{Name: "d", Nodes: []int{0, 1}}},
			Events: []config.ScenarioEvent{{
				Kind: config.ScenarioCrash, Domain: "d",
				At: 50 * sim.Microsecond, Heal: 30 * sim.Microsecond,
			}},
		}
		if _, err := ApplyScenario(&cfg, 2); err != nil {
			t.Fatalf("ApplyScenario: %v", err)
		}
		return cfg
	}
	a, b := build(1), build(999)
	a.Scenario.Seed, b.Scenario.Seed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("jitter-free expansion depends on the seed:\n%+v\n%+v", a.Crash.Events, b.Crash.Events)
	}
}
