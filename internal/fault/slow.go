// Fail-slow (straggler) injection: a component that keeps working but at a
// fraction of its speed — the failure mode neither the fail-stop layer
// (PR 4), the partition layer (PR 5), nor the integrity layer (PR 6) can
// see, because nothing ever times out, drops, or corrupts. Three
// deterministic classes, each a per-node time window: GPU compute dilation
// (every WGCtx.Compute stretches), NIC command slowdown (parse latency
// stretches, plus probabilistic per-command stalls), and DMA slowdown
// (every transfer, send- and receive-side, stretches). Factor lookups are
// RNG-free — they are pure window membership tests — and only CmdStallProb
// draws consume randomness, from the plan's private RNG seeded by
// SlowConfig.Seed, so arming a straggler never shifts the main injector's
// stream. The zero-valued config compiles to a nil plan that draws nothing
// and keeps the trace bit-for-bit (tested).
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/config"
	"repro/internal/sim"
)

// SlowStats counts injected slowdowns by class.
type SlowStats struct {
	// GPUDilations counts Compute calls stretched by a GPU window.
	GPUDilations int64
	// CmdStretched counts NIC commands whose parse latency was stretched.
	CmdStretched int64
	// CmdStalls counts NIC commands that additionally drew a stall.
	CmdStalls int64
	// DMAStretched counts DMA transfers stretched by a DMA window.
	DMAStretched int64
}

// Total returns the number of injected slowdowns across all classes.
func (s SlowStats) Total() int64 {
	return s.GPUDilations + s.CmdStretched + s.CmdStalls + s.DMAStretched
}

// SlowPlan is the compiled fail-slow schedule. A nil plan is a valid no-op
// receiver; NewSlowPlan returns nil for a disabled config so the
// straggler-free paths stay draw-free.
type SlowPlan struct {
	cfg     config.SlowConfig
	rng     *rand.Rand
	stats   SlowStats
	firstAt sim.Time
	hasAny  bool

	// sharded mode (nil/empty when off): per-node streams, counters, and
	// first-injection watermarks, aggregated on read. See Injector.Shard.
	nodeRngs  []*rand.Rand
	nodeStats []SlowStats
	nodeFirst []sim.Time
	nodeHas   []bool
}

// Shard switches the plan to per-node slowdown streams for n nodes.
func (p *SlowPlan) Shard(n int) {
	if p == nil {
		return
	}
	p.nodeRngs = make([]*rand.Rand, n)
	for i := range p.nodeRngs {
		p.nodeRngs[i] = rand.New(rand.NewSource(shardSeed(p.cfg.Seed, i)))
	}
	p.nodeStats = make([]SlowStats, n)
	p.nodeFirst = make([]sim.Time, n)
	p.nodeHas = make([]bool, n)
}

func (p *SlowPlan) r(node int) *rand.Rand {
	if p.nodeRngs != nil {
		return p.nodeRngs[node]
	}
	return p.rng
}

func (p *SlowPlan) st(node int) *SlowStats {
	if p.nodeStats != nil {
		return &p.nodeStats[node]
	}
	return &p.stats
}

// NewSlowPlan compiles a fail-slow schedule; nil when nothing is armed.
func NewSlowPlan(cfg config.SlowConfig) *SlowPlan {
	if !cfg.Enabled() {
		return nil
	}
	return &SlowPlan{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Config returns the plan's configuration (zero for nil).
func (p *SlowPlan) Config() config.SlowConfig {
	if p == nil {
		return config.SlowConfig{}
	}
	return p.cfg
}

// Stats returns a snapshot of the injected-slowdown counters, aggregated
// across per-node blocks in sharded mode.
func (p *SlowPlan) Stats() SlowStats {
	if p == nil {
		return SlowStats{}
	}
	out := p.stats
	for _, s := range p.nodeStats {
		out.GPUDilations += s.GPUDilations
		out.CmdStretched += s.CmdStretched
		out.CmdStalls += s.CmdStalls
		out.DMAStretched += s.DMAStretched
	}
	return out
}

// FirstInjectionAt returns the simulated time of the first injected
// slowdown of any class; ok is false when nothing has been injected.
// Ablations subtract it from the first Slow verdict to report detection
// latency.
func (p *SlowPlan) FirstInjectionAt() (sim.Time, bool) {
	if p == nil {
		return 0, false
	}
	first, ok := p.firstAt, p.hasAny
	for i, has := range p.nodeHas {
		if has && (!ok || p.nodeFirst[i] < first) {
			first, ok = p.nodeFirst[i], true
		}
	}
	if !ok {
		return 0, false
	}
	return first, true
}

func (p *SlowPlan) note(now sim.Time, node int) {
	if p.nodeHas != nil {
		if !p.nodeHas[node] {
			p.nodeHas[node] = true
			p.nodeFirst[node] = now
		}
		return
	}
	if !p.hasAny {
		p.hasAny = true
		p.firstAt = now
	}
}

// windows iterates the armed windows covering (node, now).
func (p *SlowPlan) windows(now sim.Time, node int, f func(*config.SlowWindow)) {
	for i := range p.cfg.Windows {
		w := &p.cfg.Windows[i]
		if w.Node != node || w.Until <= w.From || now < w.From || now >= w.Until {
			continue
		}
		f(w)
	}
}

// AffectsGPU reports whether any armed window ever dilates the node's GPU
// compute — consulted once at cluster build to decide whether to install a
// dilation hook at all, keeping unaffected nodes' Compute path untouched.
func (p *SlowPlan) AffectsGPU(node int) bool {
	if p == nil {
		return false
	}
	for i := range p.cfg.Windows {
		w := &p.cfg.Windows[i]
		if w.Node == node && w.Until > w.From && w.GPUFactor > 1 {
			return true
		}
	}
	return false
}

// GPUDilate stretches one GPU compute duration by the product of the armed
// GPU factors covering (node, now). RNG-free.
func (p *SlowPlan) GPUDilate(now sim.Time, node int, d sim.Time) sim.Time {
	if p == nil || d <= 0 {
		return d
	}
	factor := 1.0
	p.windows(now, node, func(w *config.SlowWindow) {
		if w.GPUFactor > 1 {
			factor *= w.GPUFactor
		}
	})
	if factor <= 1 {
		return d
	}
	p.st(node).GPUDilations++
	p.note(now, node)
	return sim.Time(float64(d) * factor)
}

// CommandSlow returns the stretched parse latency for one NIC command plus
// any additional stall drawn from the plan's private RNG. Only commands
// inside an armed window ever draw.
func (p *SlowPlan) CommandSlow(now sim.Time, node int, parse sim.Time) (stretched, stall sim.Time) {
	if p == nil {
		return parse, 0
	}
	factor := 1.0
	p.windows(now, node, func(w *config.SlowWindow) {
		if w.CmdFactor > 1 {
			factor *= w.CmdFactor
		}
		if w.CmdStallProb > 0 && w.CmdStallTime > 0 && p.r(node).Float64() < w.CmdStallProb {
			stall += w.CmdStallTime
		}
	})
	stretched = parse
	if factor > 1 {
		stretched = sim.Time(float64(parse) * factor)
		p.st(node).CmdStretched++
		p.note(now, node)
	}
	if stall > 0 {
		p.st(node).CmdStalls++
		p.note(now, node)
	}
	return stretched, stall
}

// DMADilate stretches one DMA transfer duration (send-side staging or
// receive-side delivery) by the product of the armed DMA factors covering
// (node, now). RNG-free.
func (p *SlowPlan) DMADilate(now sim.Time, node int, d sim.Time) sim.Time {
	if p == nil || d <= 0 {
		return d
	}
	factor := 1.0
	p.windows(now, node, func(w *config.SlowWindow) {
		if w.DMAFactor > 1 {
			factor *= w.DMAFactor
		}
	})
	if factor <= 1 {
		return d
	}
	p.st(node).DMAStretched++
	p.note(now, node)
	return sim.Time(float64(d) * factor)
}

// MaxFactor returns the largest armed slowdown factor in the schedule
// across all classes and windows — the ground truth ablations compare the
// detector's estimate against.
func (p *SlowPlan) MaxFactor() float64 {
	if p == nil {
		return 1
	}
	max := 1.0
	for i := range p.cfg.Windows {
		w := &p.cfg.Windows[i]
		if w.Until <= w.From {
			continue
		}
		for _, f := range []float64{w.GPUFactor, w.CmdFactor, w.DMAFactor} {
			if f > max {
				max = f
			}
		}
	}
	return max
}

// Summary renders the schedule for run headers; empty for nil.
func (p *SlowPlan) Summary() string {
	if p == nil {
		return ""
	}
	s := fmt.Sprintf("slow[seed=%d", p.cfg.Seed)
	for i := range p.cfg.Windows {
		w := &p.cfg.Windows[i]
		if w.Until <= w.From {
			continue
		}
		s += fmt.Sprintf(" node %d %v..%v", w.Node, w.From, w.Until)
		if w.GPUFactor > 1 {
			s += fmt.Sprintf(" gpu=%gx", w.GPUFactor)
		}
		if w.CmdFactor > 1 {
			s += fmt.Sprintf(" cmd=%gx", w.CmdFactor)
		}
		if w.CmdStallProb > 0 && w.CmdStallTime > 0 {
			s += fmt.Sprintf(" stall=%.2f%%x%v", 100*w.CmdStallProb, w.CmdStallTime)
		}
		if w.DMAFactor > 1 {
			s += fmt.Sprintf(" dma=%gx", w.DMAFactor)
		}
	}
	return s + "]"
}
