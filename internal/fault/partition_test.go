package fault

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func cutAt(a []int, at, heal sim.Time) config.PartitionConfig {
	return config.PartitionConfig{Events: []config.PartitionEvent{
		{A: a, At: at, HealAfter: heal},
	}}
}

// A symmetric cut blackholes both directions across the cut while active,
// neither direction before the cut or after the heal, and never traffic
// that stays on one side.
func TestPartitionBlackholesSymmetricCutAndHeals(t *testing.T) {
	p := NewPartitionPlan(cutAt([]int{2}, 10*sim.Microsecond, 20*sim.Microsecond))
	mid := 15 * sim.Microsecond
	if !p.Blackholed(mid, 2, 0) || !p.Blackholed(mid, 0, 2) {
		t.Fatal("active cut did not blackhole both directions")
	}
	if p.Blackholed(mid, 0, 1) {
		t.Fatal("same-side traffic blackholed")
	}
	if p.Blackholed(9*sim.Microsecond, 2, 0) {
		t.Fatal("blackholed before the cut")
	}
	// The heal instant is exclusive of the cut: At+HealAfter restores flow.
	if p.Blackholed(30*sim.Microsecond, 2, 0) {
		t.Fatal("blackholed after the heal")
	}
}

// HealAfter 0 means the cut never heals.
func TestPartitionNeverHealsWithZeroHealAfter(t *testing.T) {
	p := NewPartitionPlan(cutAt([]int{1}, sim.Microsecond, 0))
	if !p.Blackholed(sim.Second, 1, 0) {
		t.Fatal("permanent cut healed")
	}
}

// An asymmetric cut blackholes only A-to-B: side A's frames vanish, side
// B's still deliver — the gray half-open link.
func TestPartitionAsymmetricBlackholesOneDirection(t *testing.T) {
	p := NewPartitionPlan(config.PartitionConfig{Events: []config.PartitionEvent{
		{A: []int{2}, At: sim.Microsecond, Asymmetric: true},
	}})
	now := 5 * sim.Microsecond
	if !p.Blackholed(now, 2, 0) {
		t.Fatal("A->B not blackholed")
	}
	if p.Blackholed(now, 0, 2) {
		t.Fatal("B->A blackholed despite asymmetric cut")
	}
}

// With an explicit B side, nodes on neither side are unaffected.
func TestPartitionExplicitSidesLeaveBystandersAlone(t *testing.T) {
	p := NewPartitionPlan(config.PartitionConfig{Events: []config.PartitionEvent{
		{A: []int{0}, B: []int{1}, At: sim.Microsecond},
	}})
	now := 5 * sim.Microsecond
	if !p.Blackholed(now, 0, 1) || !p.Blackholed(now, 1, 0) {
		t.Fatal("named sides not cut")
	}
	if p.Blackholed(now, 0, 3) || p.Blackholed(now, 3, 1) || p.Blackholed(now, 2, 3) {
		t.Fatal("bystander traffic blackholed")
	}
}

// Unhealed reports only active never-healing cuts, with sorted sides.
func TestPartitionUnhealedReportsPermanentCutsOnly(t *testing.T) {
	p := NewPartitionPlan(config.PartitionConfig{Events: []config.PartitionEvent{
		{A: []int{3, 1}, At: 10 * sim.Microsecond},                              // permanent
		{A: []int{0}, At: 20 * sim.Microsecond, HealAfter: 5 * sim.Microsecond}, // heals
	}})
	if got := p.Unhealed(5 * sim.Microsecond); len(got) != 0 {
		t.Fatalf("cut reported before it took effect: %v", got)
	}
	got := p.Unhealed(100 * sim.Microsecond)
	if len(got) != 1 {
		t.Fatalf("Unhealed = %v, want exactly the permanent cut", got)
	}
	if len(got[0].A) != 2 || got[0].A[0] != 1 || got[0].A[1] != 3 {
		t.Fatalf("side A = %v, want sorted [1 3]", got[0].A)
	}
	if got[0].At != 10*sim.Microsecond {
		t.Fatalf("At = %v", got[0].At)
	}
	var nilPlan *PartitionPlan
	if nilPlan.Unhealed(0) != nil || nilPlan.Blackholed(0, 0, 1) {
		t.Fatal("nil plan not a no-op")
	}
}

// The injector consults the partition plan per packet: drops count as
// PartitionDrops and no RNG is drawn, so the rest of the schedule is
// unshifted relative to a partition-free run with the same seed.
func TestInjectorPartitionDropsWithoutRNGDraws(t *testing.T) {
	base := config.FaultConfig{Seed: 11, DropProb: 0.3}
	cut := base
	cut.Partition = cutAt([]int{1}, 10*sim.Microsecond, 10*sim.Microsecond)
	plain, parted := NewInjector(base), NewInjector(cut)
	// Packets that never touch the cut must get identical verdicts whether
	// or not the partition schedule is armed.
	for i := 0; i < 200; i++ {
		now := sim.Time(i) * sim.Microsecond
		a := plain.Packet(now, 0, 2)
		b := parted.Packet(now, 0, 2)
		if a != b {
			t.Fatalf("packet %d: partition schedule shifted an unrelated verdict: %+v vs %+v", i, a, b)
		}
	}
	if f := parted.Packet(15*sim.Microsecond, 1, 0); !f.Drop {
		t.Fatal("cut packet not dropped")
	}
	st := parted.Stats()
	if st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

// Degradation windows: latency inflation applies inside the window (and
// picks the worst matching factor); the loss draw happens only inside.
func TestDegradeWindowInflatesLatencyInsideWindow(t *testing.T) {
	in := NewInjector(config.FaultConfig{Degrade: config.DegradeConfig{Windows: []config.DegradeWindow{
		{Src: 2, Dst: -1, From: 10 * sim.Microsecond, Until: 20 * sim.Microsecond, LatencyFactor: 10},
		{Src: -1, Dst: -1, From: 10 * sim.Microsecond, Until: 20 * sim.Microsecond, LatencyFactor: 3},
	}}})
	if f := in.Packet(15*sim.Microsecond, 2, 0); f.DelayFactor != 10 {
		t.Fatalf("DelayFactor = %v, want the worst matching window (10)", f.DelayFactor)
	}
	if f := in.Packet(15*sim.Microsecond, 0, 1); f.DelayFactor != 3 {
		t.Fatalf("DelayFactor = %v, want the wildcard window (3)", f.DelayFactor)
	}
	if f := in.Packet(25*sim.Microsecond, 2, 0); f.DelayFactor != 0 {
		t.Fatalf("DelayFactor = %v outside the window", f.DelayFactor)
	}
	if st := in.Stats(); st.DegradeSlowed != 2 {
		t.Fatalf("DegradeSlowed = %d, want 2", st.DegradeSlowed)
	}
}

// Certain loss inside a window drops every matching packet and only those.
func TestDegradeWindowLossIsScoped(t *testing.T) {
	in := NewInjector(config.FaultConfig{Seed: 5, Degrade: config.DegradeConfig{Windows: []config.DegradeWindow{
		{Src: -1, Dst: 1, From: 0, Until: 10 * sim.Microsecond, LossProb: 1},
	}}})
	if f := in.Packet(5*sim.Microsecond, 0, 1); !f.Drop {
		t.Fatal("certain in-window loss did not drop")
	}
	if f := in.Packet(5*sim.Microsecond, 1, 0); f.Drop {
		t.Fatal("reverse direction dropped")
	}
	if f := in.Packet(15*sim.Microsecond, 0, 1); f.Drop {
		t.Fatal("dropped outside the window")
	}
	if st := in.Stats(); st.DegradeDrops != 1 {
		t.Fatalf("DegradeDrops = %d, want 1", st.DegradeDrops)
	}
}

// Ramped loss climbs linearly from zero at From to LossProb at Until.
func TestDegradeRampScalesLoss(t *testing.T) {
	w := &config.DegradeWindow{
		From: 0, Until: 100 * sim.Microsecond, LossProb: 0.8, Ramp: true,
	}
	if got := degradeLoss(w, 0); got != 0 {
		t.Fatalf("loss at window start = %v, want 0", got)
	}
	if got := degradeLoss(w, 50*sim.Microsecond); got < 0.39 || got > 0.41 {
		t.Fatalf("loss at midpoint = %v, want ~0.4", got)
	}
	if got := degradeLoss(w, 99*sim.Microsecond); got < 0.78 {
		t.Fatalf("loss near window end = %v, want ~0.8", got)
	}
	w.Ramp = false
	if got := degradeLoss(w, 0); got != 0.8 {
		t.Fatalf("unramped loss = %v, want flat 0.8", got)
	}
}

// The run-header summary names armed partitions and degradation windows.
func TestSummaryMentionsPartitionAndDegrade(t *testing.T) {
	in := NewInjector(config.FaultConfig{
		Partition: config.PartitionConfig{Events: []config.PartitionEvent{
			{A: []int{2}, At: sim.Microsecond, Asymmetric: true},
		}},
		Degrade: config.DegradeConfig{Windows: []config.DegradeWindow{
			{Src: 2, Dst: -1, Until: sim.Microsecond, LatencyFactor: 10, LossProb: 0.1},
		}},
	})
	s := in.Summary()
	for _, want := range []string{"partition", "degrade"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
