// Deterministic crash-stop/restart schedules. A CrashPlan turns a
// config.CrashConfig into engine events: at each event's time the node
// crash-stops (losing all NIC, GPU, and process state — the node layer
// decides what that means), and, if a restart delay is configured, comes
// back cold that much later. The schedule is pure configuration — no
// randomness — so a given plan replays bit-for-bit under any seed.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
)

// CrashPlan is an armed (or armable) deterministic crash schedule.
type CrashPlan struct {
	events []config.CrashEvent
}

// NewCrashPlan builds a plan from configuration. It returns nil when the
// configuration schedules nothing, and all methods are nil-safe, so the
// crash-free hot path stays untouched (pay-for-use).
func NewCrashPlan(cfg config.CrashConfig) *CrashPlan {
	if !cfg.Enabled() {
		return nil
	}
	return &CrashPlan{events: cfg.Events}
}

// Arm schedules the plan's events on the engine: crash(node) fires at each
// event's At, and restart(node) fires RestartAfter later when a restart is
// configured. Callbacks run as ordinary engine events, interleaved
// deterministically with model traffic.
func (p *CrashPlan) Arm(eng *sim.Engine, crash, restart func(node int)) {
	if p == nil {
		return
	}
	now := eng.Now()
	for _, ev := range p.events {
		ev := ev
		eng.After(ev.At-now, func() { crash(ev.Node) })
		if ev.RestartAfter > 0 {
			eng.After(ev.At+ev.RestartAfter-now, func() { restart(ev.Node) })
		}
	}
}

// Summary renders a one-line human-readable description of the schedule
// (used by run headers). Nil plans describe themselves as inactive.
func (p *CrashPlan) Summary() string {
	if p == nil {
		return "crashes: none"
	}
	parts := make([]string, 0, len(p.events))
	for _, ev := range p.events {
		s := fmt.Sprintf("node %d @%v", ev.Node, ev.At)
		if ev.RestartAfter > 0 {
			s += fmt.Sprintf(" (restart +%v)", ev.RestartAfter)
		} else {
			s += " (no restart)"
		}
		parts = append(parts, s)
	}
	return "crashes: " + strings.Join(parts, ", ")
}
