// Deterministic switch/trunk failure schedules for the fat-tree fabric.
// A SwitchPlan turns a config.SwitchConfig into engine events: at each
// event's time a whole switch (leaf/spine/core) or one inter-switch trunk
// goes dark — the fabric drops everything it held and routes around it —
// and, if a restore delay is configured, comes back empty that much
// later. The schedule is pure configuration — no randomness — so a given
// plan replays bit-for-bit under any seed.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
)

// SwitchPlan is an armed (or armable) deterministic switch-failure
// schedule.
type SwitchPlan struct {
	events []config.SwitchEvent
}

// NewSwitchPlan builds a plan from configuration. It returns nil when the
// configuration schedules nothing, and all methods are nil-safe, so the
// failure-free hot path stays untouched (pay-for-use).
func NewSwitchPlan(cfg config.SwitchConfig) *SwitchPlan {
	if !cfg.Enabled() {
		return nil
	}
	return &SwitchPlan{events: cfg.Events}
}

// Arm schedules the plan's events on the engine: kill fires at each
// event's At with the dead switch (tier, index) — or, for a trunk event,
// killTrunk with both endpoints — and the matching restore fires
// RestoreAfter later when one is configured. Callbacks run as ordinary
// engine events, interleaved deterministically with model traffic.
func (p *SwitchPlan) Arm(eng *sim.Engine,
	kill, restore func(tier string, index int),
	killTrunk, restoreTrunk func(aTier string, aIdx int, bTier string, bIdx int)) {
	if p == nil {
		return
	}
	now := eng.Now()
	for _, ev := range p.events {
		ev := ev
		if ev.Tier == config.SwitchTierTrunk {
			aT, aI, errA := config.ParseSwitchRef(ev.A)
			bT, bI, errB := config.ParseSwitchRef(ev.B)
			if errA != nil || errB != nil {
				// Validate() rejects malformed refs before a plan is built.
				panic(fmt.Sprintf("fault: unvalidated trunk event %q-%q", ev.A, ev.B))
			}
			eng.After(ev.At-now, func() { killTrunk(aT, aI, bT, bI) })
			if ev.RestoreAfter > 0 {
				eng.After(ev.At+ev.RestoreAfter-now, func() { restoreTrunk(aT, aI, bT, bI) })
			}
			continue
		}
		eng.After(ev.At-now, func() { kill(ev.Tier, ev.Index) })
		if ev.RestoreAfter > 0 {
			eng.After(ev.At+ev.RestoreAfter-now, func() { restore(ev.Tier, ev.Index) })
		}
	}
}

// Summary renders a one-line human-readable description of the schedule
// (used by run headers). Nil plans describe themselves as inactive.
func (p *SwitchPlan) Summary() string {
	if p == nil {
		return "switch failures: none"
	}
	parts := make([]string, 0, len(p.events))
	for _, ev := range p.events {
		var s string
		if ev.Tier == config.SwitchTierTrunk {
			s = fmt.Sprintf("trunk %s-%s @%v", ev.A, ev.B, ev.At)
		} else {
			s = fmt.Sprintf("%s%d @%v", ev.Tier, ev.Index, ev.At)
		}
		if ev.RestoreAfter > 0 {
			s += fmt.Sprintf(" (restore +%v)", ev.RestoreAfter)
		} else {
			s += " (no restore)"
		}
		parts = append(parts, s)
	}
	return "switch failures: " + strings.Join(parts, ", ")
}
