package fault

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if f := in.Packet(0, 0, 1); f != (PacketFate{}) {
		t.Fatalf("nil Packet fate = %+v", f)
	}
	if drop, d := in.TriggerFault(0); drop || d != 0 {
		t.Fatal("nil TriggerFault injected")
	}
	if in.CommandStall(0) != 0 {
		t.Fatal("nil CommandStall injected")
	}
	if in.Stats() != (Stats{}) {
		t.Fatal("nil Stats nonzero")
	}
	if in.Summary() != "faults: none" {
		t.Fatalf("nil Summary = %q", in.Summary())
	}
	// FaultConfig holds schedules (slices) now, so compare by arming.
	if in.Config().Enabled() {
		t.Fatal("nil Config armed")
	}
	if in.Partitions() != nil {
		t.Fatal("nil Partitions nonzero")
	}
}

func TestNewInjectorDisabledReturnsNil(t *testing.T) {
	if NewInjector(config.FaultConfig{}) != nil {
		t.Fatal("zero config should build a nil injector")
	}
	// Seed alone arms nothing.
	if NewInjector(config.FaultConfig{Seed: 99}) != nil {
		t.Fatal("seed-only config should build a nil injector")
	}
	if NewInjector(config.FaultConfig{DropProb: 0.1}) == nil {
		t.Fatal("armed config should build an injector")
	}
}

// Same seed and call sequence must give the same verdicts (the determinism
// contract every chaos test builds on).
func TestSameSeedSameSchedule(t *testing.T) {
	cfg := config.FaultConfig{
		Seed: 7, DropProb: 0.2, CorruptProb: 0.1, DelayJitter: 100 * sim.Nanosecond,
	}
	run := func() []PacketFate {
		in := NewInjector(cfg)
		var out []PacketFate
		for i := 0; i < 500; i++ {
			out = append(out, in.Packet(sim.Time(i), i%4, (i+1)%4))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must (with overwhelming probability) differ somewhere.
	cfg.Seed = 8
	c := NewInjector(cfg)
	diff := false
	for i := 0; i < 500; i++ {
		if c.Packet(sim.Time(i), i%4, (i+1)%4) != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical 500-packet schedules")
	}
}

func TestFlapWindowDropsDeterministically(t *testing.T) {
	in := NewInjector(config.FaultConfig{
		FlapNode:  2,
		FlapStart: 10 * sim.Microsecond,
		FlapEnd:   20 * sim.Microsecond,
	})
	// Inside the window, any packet touching node 2 is dropped; others pass.
	if f := in.Packet(15*sim.Microsecond, 2, 0); !f.Drop {
		t.Fatal("flap src not dropped")
	}
	if f := in.Packet(15*sim.Microsecond, 0, 2); !f.Drop {
		t.Fatal("flap dst not dropped")
	}
	if f := in.Packet(15*sim.Microsecond, 0, 1); f.Drop {
		t.Fatal("non-flap pair dropped")
	}
	// Outside the window nothing is dropped (window end is exclusive).
	if f := in.Packet(9*sim.Microsecond, 2, 0); f.Drop {
		t.Fatal("dropped before window")
	}
	if f := in.Packet(20*sim.Microsecond, 2, 0); f.Drop {
		t.Fatal("dropped at window end")
	}
	st := in.Stats()
	if st.PacketsDropped != 2 || st.FlapDrops != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTriggerAndCommandFaults(t *testing.T) {
	in := NewInjector(config.FaultConfig{
		TrigDropProb: 1.0,
		CmdStallProb: 1.0, CmdStallTime: 3 * sim.Microsecond,
	})
	if drop, _ := in.TriggerFault(0); !drop {
		t.Fatal("certain trigger drop did not drop")
	}
	if d := in.CommandStall(0); d != 3*sim.Microsecond {
		t.Fatalf("stall = %v", d)
	}
	st := in.Stats()
	if st.TriggerDrops != 1 || st.CommandStalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSummaryMentionsArmedFaults(t *testing.T) {
	in := NewInjector(config.FaultConfig{
		Seed: 42, DropProb: 0.05,
		FlapNode: 1, FlapStart: 1, FlapEnd: 2,
		CmdStallProb: 0.5, CmdStallTime: 1,
		TrigDropProb: 0.1,
	})
	s := in.Summary()
	for _, want := range []string{"seed=42", "drop=5.00%", "flap[node 1", "cmd-stall", "trig["} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
