// Package fault is the deterministic fault-injection subsystem: a single
// seeded Injector threaded through the fabric and the NICs that decides,
// per packet / trigger write / command, whether to drop, corrupt, delay,
// or stall. Because all model code runs hand-off scheduled on the
// simulation engine, the injector's RNG is consumed in a deterministic
// order: the same seed and configuration always reproduce the same fault
// schedule and therefore the same event trace.
//
// The zero-valued config disables every fault, and a nil *Injector is a
// valid no-op receiver, so the hot paths stay byte-identical to the
// fault-free model when injection is off (pay-for-use).
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/config"
	"repro/internal/sim"
)

// PacketFate is the injector's verdict for one packet at its egress point.
type PacketFate struct {
	// Drop discards the packet; the owning message is lost.
	Drop bool
	// Corrupt flags the message as corrupted; receivers without a
	// reliability layer discard it, receivers with one NACK it.
	Corrupt bool
	// Delay is extra flight time added to the packet (jitter).
	Delay sim.Time
	// DelayFactor, when > 1, multiplies the packet's base flight latency
	// (propagation + switching) before Delay is added — the link-degradation
	// verdict. 0 and 1 both mean "no scaling".
	DelayFactor float64
}

// Stats counts injected faults.
type Stats struct {
	PacketsDropped   int64
	FlapDrops        int64 // subset of PacketsDropped due to link flaps
	PartitionDrops   int64 // subset of PacketsDropped blackholed by a cut
	DegradeDrops     int64 // subset of PacketsDropped lost inside a degradation window
	PacketsCorrupted int64
	PacketsDelayed   int64
	DegradeSlowed    int64 // packets whose flight was stretched by a degradation window
	TriggerDrops     int64
	TriggerDelays    int64
	CommandStalls    int64
}

// Injector makes all fault decisions for one cluster. Its methods are
// nil-safe: a nil receiver returns the zero (fault-free) verdict, so model
// code calls them unconditionally.
//
// By default all decisions draw from one shared RNG stream — the seed
// behavior every tuned chaos schedule depends on. Shard switches to
// per-node streams and counters so decisions attributed to different nodes
// never touch shared state; a sharded cluster requires it (each verdict is
// drawn on the deciding node's engine).
type Injector struct {
	cfg   config.FaultConfig
	rng   *rand.Rand
	plan  *PartitionPlan
	sdc   *SDCPlan
	slow  *SlowPlan
	stats Stats

	// sharded mode (nil/empty when off)
	nodeRngs  []*rand.Rand
	nodeStats []Stats
}

// shardSeed derives node i's private stream seed from a base seed. Any
// deterministic injective-ish mix works; what matters is that every node
// gets an independent stream fixed by (base, i) alone.
func shardSeed(base int64, i int) int64 {
	return base*1000003 + int64(i)*7919 + 1
}

// Shard switches the injector (and its SDC and fail-slow plans) to
// per-node fault streams and counters for a cluster of n nodes. Verdicts
// become a deterministic function of (seed, node, local history) instead of
// (seed, global draw order) — which is exactly what makes them invariant
// under shard partitioning, at the cost of a different (equally valid)
// fault schedule than the shared-stream mode. Aggregate accessors are
// unaffected. Must be called before any draw.
func (in *Injector) Shard(n int) {
	if in == nil {
		return
	}
	in.nodeRngs = make([]*rand.Rand, n)
	for i := range in.nodeRngs {
		in.nodeRngs[i] = rand.New(rand.NewSource(shardSeed(in.cfg.Seed, i)))
	}
	in.nodeStats = make([]Stats, n)
	in.sdc.Shard(n)
	in.slow.Shard(n)
}

// r returns the RNG for a decision attributed to node.
func (in *Injector) r(node int) *rand.Rand {
	if in.nodeRngs != nil {
		return in.nodeRngs[node]
	}
	return in.rng
}

// st returns the counter block for a decision attributed to node.
func (in *Injector) st(node int) *Stats {
	if in.nodeStats != nil {
		return &in.nodeStats[node]
	}
	return &in.stats
}

func (a *Stats) add(b Stats) {
	a.PacketsDropped += b.PacketsDropped
	a.FlapDrops += b.FlapDrops
	a.PartitionDrops += b.PartitionDrops
	a.DegradeDrops += b.DegradeDrops
	a.PacketsCorrupted += b.PacketsCorrupted
	a.PacketsDelayed += b.PacketsDelayed
	a.DegradeSlowed += b.DegradeSlowed
	a.TriggerDrops += b.TriggerDrops
	a.TriggerDelays += b.TriggerDelays
	a.CommandStalls += b.CommandStalls
}

// NewInjector builds an injector for an enabled fault configuration. It
// returns nil when the configuration injects nothing, which keeps the
// fault-free hot paths allocation- and event-free.
func NewInjector(cfg config.FaultConfig) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		plan: NewPartitionPlan(cfg.Partition),
		sdc:  NewSDCPlan(cfg.SDC),
		slow: NewSlowPlan(cfg.Slow),
	}
}

// Partitions returns the compiled partition schedule (nil for nil or when
// none is configured); the watchdog reads it to name unhealed cuts.
func (in *Injector) Partitions() *PartitionPlan {
	if in == nil {
		return nil
	}
	return in.plan
}

// SDC returns the compiled silent-data-corruption plan (nil for nil or
// when none is configured); NICs and collectives consult it directly.
func (in *Injector) SDC() *SDCPlan {
	if in == nil {
		return nil
	}
	return in.sdc
}

// Slow returns the compiled fail-slow plan (nil for nil or when none is
// configured); GPUs and NICs consult it directly.
func (in *Injector) Slow() *SlowPlan {
	if in == nil {
		return nil
	}
	return in.slow
}

// Stats returns a snapshot of the injected-fault counters, aggregated
// across per-node blocks in sharded mode. Read between runs, not from
// concurrent model code.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	out := in.stats
	for i := range in.nodeStats {
		out.add(in.nodeStats[i])
	}
	return out
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() config.FaultConfig {
	if in == nil {
		return config.FaultConfig{}
	}
	return in.cfg
}

// Packet decides the fate of one packet from src to dst at simulated time
// now. The RNG-free verdicts come first — flap windows, then partition
// blackholes — so arming them never shifts the stream of random draws.
// Then, in a fixed order: degradation loss/latency (drawn only for packets
// inside an armed window), drop, corruption, and jitter.
func (in *Injector) Packet(now sim.Time, src, dst int) PacketFate {
	if in == nil {
		return PacketFate{}
	}
	// Packet verdicts are drawn at the source's egress, so they attribute
	// to src in sharded mode.
	c, rng, st := &in.cfg, in.r(src), in.st(src)
	if c.FlapEnd > c.FlapStart && now >= c.FlapStart && now < c.FlapEnd &&
		(src == c.FlapNode || dst == c.FlapNode) {
		st.PacketsDropped++
		st.FlapDrops++
		return PacketFate{Drop: true}
	}
	if in.plan.Blackholed(now, src, dst) {
		st.PacketsDropped++
		st.PartitionDrops++
		return PacketFate{Drop: true}
	}
	var f PacketFate
	for i := range c.Degrade.Windows {
		w := &c.Degrade.Windows[i]
		if !degradeMatch(w, now, src, dst) {
			continue
		}
		if loss := degradeLoss(w, now); loss > 0 && rng.Float64() < loss {
			st.PacketsDropped++
			st.DegradeDrops++
			return PacketFate{Drop: true}
		}
		if w.LatencyFactor > f.DelayFactor {
			f.DelayFactor = w.LatencyFactor
		}
	}
	if f.DelayFactor > 1 {
		st.DegradeSlowed++
	}
	if c.DropProb > 0 && rng.Float64() < c.DropProb {
		st.PacketsDropped++
		f.Drop = true
		return f
	}
	if c.CorruptProb > 0 && rng.Float64() < c.CorruptProb {
		st.PacketsCorrupted++
		f.Corrupt = true
	}
	if c.DelayJitter > 0 {
		f.Delay = sim.Time(rng.Int63n(int64(c.DelayJitter) + 1))
		if f.Delay > 0 {
			st.PacketsDelayed++
		}
	}
	return f
}

// TriggerFault decides whether a GPU trigger write to the given node's NIC
// is lost on the MMIO path, and how much extra flight delay it suffers.
func (in *Injector) TriggerFault(node int) (drop bool, delay sim.Time) {
	if in == nil {
		return false, 0
	}
	c, rng, st := &in.cfg, in.r(node), in.st(node)
	if c.TrigDropProb > 0 && rng.Float64() < c.TrigDropProb {
		st.TriggerDrops++
		return true, 0
	}
	if c.TrigDelayJitter > 0 {
		delay = sim.Time(rng.Int63n(int64(c.TrigDelayJitter) + 1))
		if delay > 0 {
			st.TriggerDelays++
		}
	}
	return false, delay
}

// CommandStall returns a stall duration for the given node's NIC command
// pipeline before it parses its next command (0 = no stall).
func (in *Injector) CommandStall(node int) sim.Time {
	if in == nil {
		return 0
	}
	c := &in.cfg
	if c.CmdStallProb > 0 && c.CmdStallTime > 0 && in.r(node).Float64() < c.CmdStallProb {
		in.st(node).CommandStalls++
		return c.CmdStallTime
	}
	return 0
}

// Summary renders a one-line human-readable description of the active
// fault schedule (used by run headers).
func (in *Injector) Summary() string {
	if in == nil {
		return "faults: none"
	}
	c := &in.cfg
	s := fmt.Sprintf("faults: seed=%d drop=%.2f%% corrupt=%.2f%% jitter=%v",
		c.Seed, 100*c.DropProb, 100*c.CorruptProb, c.DelayJitter)
	if c.FlapEnd > c.FlapStart {
		s += fmt.Sprintf(" flap[node %d %v..%v]", c.FlapNode, c.FlapStart, c.FlapEnd)
	}
	if c.CmdStallProb > 0 {
		s += fmt.Sprintf(" cmd-stall=%.2f%%x%v", 100*c.CmdStallProb, c.CmdStallTime)
	}
	if c.TrigDropProb > 0 || c.TrigDelayJitter > 0 {
		s += fmt.Sprintf(" trig[drop=%.2f%% jitter=%v]", 100*c.TrigDropProb, c.TrigDelayJitter)
	}
	if in.plan != nil {
		s += " " + in.plan.Summary()
	}
	if ds := degradeSummary(c.Degrade); ds != "" {
		s += " " + ds
	}
	if in.sdc != nil {
		s += " " + in.sdc.Summary()
	}
	if in.slow != nil {
		s += " " + in.slow.Summary()
	}
	return s
}
