// Package fault is the deterministic fault-injection subsystem: a single
// seeded Injector threaded through the fabric and the NICs that decides,
// per packet / trigger write / command, whether to drop, corrupt, delay,
// or stall. Because all model code runs hand-off scheduled on the
// simulation engine, the injector's RNG is consumed in a deterministic
// order: the same seed and configuration always reproduce the same fault
// schedule and therefore the same event trace.
//
// The zero-valued config disables every fault, and a nil *Injector is a
// valid no-op receiver, so the hot paths stay byte-identical to the
// fault-free model when injection is off (pay-for-use).
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/config"
	"repro/internal/sim"
)

// PacketFate is the injector's verdict for one packet at its egress point.
type PacketFate struct {
	// Drop discards the packet; the owning message is lost.
	Drop bool
	// Corrupt flags the message as corrupted; receivers without a
	// reliability layer discard it, receivers with one NACK it.
	Corrupt bool
	// Delay is extra flight time added to the packet (jitter).
	Delay sim.Time
	// DelayFactor, when > 1, multiplies the packet's base flight latency
	// (propagation + switching) before Delay is added — the link-degradation
	// verdict. 0 and 1 both mean "no scaling".
	DelayFactor float64
}

// Stats counts injected faults.
type Stats struct {
	PacketsDropped   int64
	FlapDrops        int64 // subset of PacketsDropped due to link flaps
	PartitionDrops   int64 // subset of PacketsDropped blackholed by a cut
	DegradeDrops     int64 // subset of PacketsDropped lost inside a degradation window
	PacketsCorrupted int64
	PacketsDelayed   int64
	DegradeSlowed    int64 // packets whose flight was stretched by a degradation window
	TriggerDrops     int64
	TriggerDelays    int64
	CommandStalls    int64
}

// Injector makes all fault decisions for one cluster. Its methods are
// nil-safe: a nil receiver returns the zero (fault-free) verdict, so model
// code calls them unconditionally.
type Injector struct {
	cfg   config.FaultConfig
	rng   *rand.Rand
	plan  *PartitionPlan
	sdc   *SDCPlan
	slow  *SlowPlan
	stats Stats
}

// NewInjector builds an injector for an enabled fault configuration. It
// returns nil when the configuration injects nothing, which keeps the
// fault-free hot paths allocation- and event-free.
func NewInjector(cfg config.FaultConfig) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		plan: NewPartitionPlan(cfg.Partition),
		sdc:  NewSDCPlan(cfg.SDC),
		slow: NewSlowPlan(cfg.Slow),
	}
}

// Partitions returns the compiled partition schedule (nil for nil or when
// none is configured); the watchdog reads it to name unhealed cuts.
func (in *Injector) Partitions() *PartitionPlan {
	if in == nil {
		return nil
	}
	return in.plan
}

// SDC returns the compiled silent-data-corruption plan (nil for nil or
// when none is configured); NICs and collectives consult it directly.
func (in *Injector) SDC() *SDCPlan {
	if in == nil {
		return nil
	}
	return in.sdc
}

// Slow returns the compiled fail-slow plan (nil for nil or when none is
// configured); GPUs and NICs consult it directly.
func (in *Injector) Slow() *SlowPlan {
	if in == nil {
		return nil
	}
	return in.slow
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() config.FaultConfig {
	if in == nil {
		return config.FaultConfig{}
	}
	return in.cfg
}

// Packet decides the fate of one packet from src to dst at simulated time
// now. The RNG-free verdicts come first — flap windows, then partition
// blackholes — so arming them never shifts the stream of random draws.
// Then, in a fixed order: degradation loss/latency (drawn only for packets
// inside an armed window), drop, corruption, and jitter.
func (in *Injector) Packet(now sim.Time, src, dst int) PacketFate {
	if in == nil {
		return PacketFate{}
	}
	c := &in.cfg
	if c.FlapEnd > c.FlapStart && now >= c.FlapStart && now < c.FlapEnd &&
		(src == c.FlapNode || dst == c.FlapNode) {
		in.stats.PacketsDropped++
		in.stats.FlapDrops++
		return PacketFate{Drop: true}
	}
	if in.plan.Blackholed(now, src, dst) {
		in.stats.PacketsDropped++
		in.stats.PartitionDrops++
		return PacketFate{Drop: true}
	}
	var f PacketFate
	for i := range c.Degrade.Windows {
		w := &c.Degrade.Windows[i]
		if !degradeMatch(w, now, src, dst) {
			continue
		}
		if loss := degradeLoss(w, now); loss > 0 && in.rng.Float64() < loss {
			in.stats.PacketsDropped++
			in.stats.DegradeDrops++
			return PacketFate{Drop: true}
		}
		if w.LatencyFactor > f.DelayFactor {
			f.DelayFactor = w.LatencyFactor
		}
	}
	if f.DelayFactor > 1 {
		in.stats.DegradeSlowed++
	}
	if c.DropProb > 0 && in.rng.Float64() < c.DropProb {
		in.stats.PacketsDropped++
		f.Drop = true
		return f
	}
	if c.CorruptProb > 0 && in.rng.Float64() < c.CorruptProb {
		in.stats.PacketsCorrupted++
		f.Corrupt = true
	}
	if c.DelayJitter > 0 {
		f.Delay = sim.Time(in.rng.Int63n(int64(c.DelayJitter) + 1))
		if f.Delay > 0 {
			in.stats.PacketsDelayed++
		}
	}
	return f
}

// TriggerFault decides whether a GPU trigger write to the given node's NIC
// is lost on the MMIO path, and how much extra flight delay it suffers.
func (in *Injector) TriggerFault(node int) (drop bool, delay sim.Time) {
	if in == nil {
		return false, 0
	}
	c := &in.cfg
	if c.TrigDropProb > 0 && in.rng.Float64() < c.TrigDropProb {
		in.stats.TriggerDrops++
		return true, 0
	}
	if c.TrigDelayJitter > 0 {
		delay = sim.Time(in.rng.Int63n(int64(c.TrigDelayJitter) + 1))
		if delay > 0 {
			in.stats.TriggerDelays++
		}
	}
	return false, delay
}

// CommandStall returns a stall duration for the given node's NIC command
// pipeline before it parses its next command (0 = no stall).
func (in *Injector) CommandStall(node int) sim.Time {
	if in == nil {
		return 0
	}
	c := &in.cfg
	if c.CmdStallProb > 0 && c.CmdStallTime > 0 && in.rng.Float64() < c.CmdStallProb {
		in.stats.CommandStalls++
		return c.CmdStallTime
	}
	return 0
}

// Summary renders a one-line human-readable description of the active
// fault schedule (used by run headers).
func (in *Injector) Summary() string {
	if in == nil {
		return "faults: none"
	}
	c := &in.cfg
	s := fmt.Sprintf("faults: seed=%d drop=%.2f%% corrupt=%.2f%% jitter=%v",
		c.Seed, 100*c.DropProb, 100*c.CorruptProb, c.DelayJitter)
	if c.FlapEnd > c.FlapStart {
		s += fmt.Sprintf(" flap[node %d %v..%v]", c.FlapNode, c.FlapStart, c.FlapEnd)
	}
	if c.CmdStallProb > 0 {
		s += fmt.Sprintf(" cmd-stall=%.2f%%x%v", 100*c.CmdStallProb, c.CmdStallTime)
	}
	if c.TrigDropProb > 0 || c.TrigDelayJitter > 0 {
		s += fmt.Sprintf(" trig[drop=%.2f%% jitter=%v]", 100*c.TrigDropProb, c.TrigDelayJitter)
	}
	if in.plan != nil {
		s += " " + in.plan.Summary()
	}
	if ds := degradeSummary(c.Degrade); ds != "" {
		s += " " + ds
	}
	if in.sdc != nil {
		s += " " + in.sdc.Summary()
	}
	if in.slow != nil {
		s += " " + in.slow.Summary()
	}
	return s
}
