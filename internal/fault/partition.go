// Partition and link-degradation schedules: the gray-failure half of the
// fault model. A PartitionPlan answers "is this directed (src,dst) pair
// blackholed at time t" from a precomputed side map — no RNG, no events —
// and a degradeState answers "is this packet inside a degradation window,
// and if so how slow and how lossy". Both are consulted from the single
// per-packet fault point in the fabrics, so the tree topology honors them
// without any new processes.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
)

// partitionEvent is one compiled cut: the config event plus O(1) side
// lookup maps. B empty in the config means "complement of A", resolved
// lazily: a node absent from aSet is on side B.
type partitionEvent struct {
	cfg  config.PartitionEvent
	aSet map[int]bool
	bSet map[int]bool // nil when B is the complement of A
}

// active reports whether the cut is in force at time now.
func (ev *partitionEvent) active(now sim.Time) bool {
	if now < ev.cfg.At {
		return false
	}
	return ev.cfg.HealAfter == 0 || now < ev.cfg.At+ev.cfg.HealAfter
}

// sideA and sideB classify a node. With an explicit B, nodes on neither
// side are unaffected by the cut.
func (ev *partitionEvent) sideA(n int) bool { return ev.aSet[n] }
func (ev *partitionEvent) sideB(n int) bool {
	if ev.bSet == nil {
		return !ev.aSet[n]
	}
	return ev.bSet[n]
}

// PartitionPlan is the compiled deterministic partition schedule. A nil
// plan is a valid no-op receiver, mirroring CrashPlan and Injector.
type PartitionPlan struct {
	events []partitionEvent
}

// NewPartitionPlan compiles a partition schedule; it returns nil when the
// configuration schedules nothing, keeping the fault-free paths free.
func NewPartitionPlan(cfg config.PartitionConfig) *PartitionPlan {
	if !cfg.Enabled() {
		return nil
	}
	p := &PartitionPlan{}
	for _, ev := range cfg.Events {
		ce := partitionEvent{cfg: ev, aSet: map[int]bool{}}
		for _, n := range ev.A {
			ce.aSet[n] = true
		}
		if len(ev.B) > 0 {
			ce.bSet = map[int]bool{}
			for _, n := range ev.B {
				ce.bSet[n] = true
			}
		}
		p.events = append(p.events, ce)
	}
	return p
}

// Blackholed reports whether a packet from src to dst at time now is
// absorbed by an active cut. Asymmetric cuts blackhole only A-to-B.
func (p *PartitionPlan) Blackholed(now sim.Time, src, dst int) bool {
	if p == nil {
		return false
	}
	for i := range p.events {
		ev := &p.events[i]
		if !ev.active(now) {
			continue
		}
		if ev.sideA(src) && ev.sideB(dst) {
			return true
		}
		if !ev.cfg.Asymmetric && ev.sideB(src) && ev.sideA(dst) {
			return true
		}
	}
	return false
}

// UnhealedPartition describes one cut still in force at a diagnosis time;
// the watchdog folds these into sim.HangError so a hang under a
// never-healing partition names its cause.
type UnhealedPartition struct {
	A, B       []int
	At         sim.Time
	Asymmetric bool
}

// Unhealed returns the cuts active at time now that will never heal,
// in schedule order.
func (p *PartitionPlan) Unhealed(now sim.Time) []UnhealedPartition {
	if p == nil {
		return nil
	}
	var out []UnhealedPartition
	for i := range p.events {
		ev := &p.events[i]
		if ev.cfg.HealAfter != 0 || now < ev.cfg.At {
			continue
		}
		u := UnhealedPartition{
			A:          append([]int(nil), ev.cfg.A...),
			B:          append([]int(nil), ev.cfg.B...),
			At:         ev.cfg.At,
			Asymmetric: ev.cfg.Asymmetric,
		}
		sort.Ints(u.A)
		sort.Ints(u.B)
		out = append(out, u)
	}
	return out
}

// Summary renders a one-line description of the schedule for run headers.
func (p *PartitionPlan) Summary() string {
	if p == nil {
		return "partitions: none"
	}
	var parts []string
	for i := range p.events {
		ev := &p.events[i].cfg
		heal := "never heals"
		if ev.HealAfter > 0 {
			heal = fmt.Sprintf("heals at %v", ev.At+ev.HealAfter)
		}
		shape := ""
		if ev.Asymmetric {
			shape = " asymmetric"
		}
		b := "rest"
		if len(ev.B) > 0 {
			b = fmt.Sprintf("%v", ev.B)
		}
		parts = append(parts, fmt.Sprintf("cut%s %v|%s at %v (%s)", shape, ev.A, b, ev.At, heal))
	}
	return "partitions: " + strings.Join(parts, ", ")
}

// degradeMatch reports whether window w covers a packet on the directed
// link src->dst at time now, honoring -1 wildcards.
func degradeMatch(w *config.DegradeWindow, now sim.Time, src, dst int) bool {
	if !w.Enabled() || now < w.From || now >= w.Until {
		return false
	}
	if w.Src != -1 && w.Src != src {
		return false
	}
	if w.Dst != -1 && w.Dst != dst {
		return false
	}
	return true
}

// degradeLoss returns the effective loss probability of window w at time
// now: flat LossProb, or ramped linearly from 0 to LossProb across the
// window when Ramp is set.
func degradeLoss(w *config.DegradeWindow, now sim.Time) float64 {
	if !w.Ramp {
		return w.LossProb
	}
	span := w.Until - w.From
	if span <= 0 {
		return w.LossProb
	}
	return w.LossProb * float64(now-w.From) / float64(span)
}

// degradeSummary renders the degradation schedule for run headers.
func degradeSummary(cfg config.DegradeConfig) string {
	if !cfg.Enabled() {
		return ""
	}
	var parts []string
	for i := range cfg.Windows {
		w := &cfg.Windows[i]
		if !w.Enabled() {
			continue
		}
		link := fmt.Sprintf("%s->%s", wildcard(w.Src), wildcard(w.Dst))
		d := fmt.Sprintf("%s x%.0f", link, w.LatencyFactor)
		if w.LossProb > 0 {
			ramp := ""
			if w.Ramp {
				ramp = " ramp"
			}
			d += fmt.Sprintf(" loss=%.1f%%%s", 100*w.LossProb, ramp)
		}
		d += fmt.Sprintf(" [%v..%v)", w.From, w.Until)
		parts = append(parts, d)
	}
	return "degrade: " + strings.Join(parts, ", ")
}

func wildcard(n int) string {
	if n == -1 {
		return "*"
	}
	return fmt.Sprintf("%d", n)
}
