// Reliable delivery (go-back-on-loss with selective buffering): every
// outbound data frame between a (src, dst) NIC pair carries a sequence
// number; the receiver delivers strictly in order, buffering out-of-order
// arrivals, and acknowledges cumulatively. The sender keeps a sliding
// window of unacknowledged frames, retransmitting on per-frame timeouts
// with exponential backoff and NACK-triggered fast retransmit for frames
// that arrive corrupt. A configurable retry budget bounds recovery: when
// it is exhausted the peer is declared dead and registered callbacks fire,
// letting upper layers degrade gracefully instead of hanging.
//
// Everything runs in simulated time on the single-threaded engine, so the
// protocol needs no locking and — with a seeded fault injector — replays
// bit-for-bit. All bookkeeping iterates explicit sequence ranges, never Go
// maps, to keep event order deterministic.
package nic

import (
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/sim"
)

// relEnvelope wraps one data frame with its per-(src,dst) sequence number.
// sess is the channel session: HealPeer starts a fresh session so sequence
// spaces restart after a partition heals without a node-incarnation bump.
// sentAt is the NIC hardware timestamp of this transmission, echoed by the
// receiver's ACK so RTT samples are never retransmission-ambiguous.
type relEnvelope struct {
	seq    uint64
	sess   uint64
	sentAt sim.Time
	meta   *wireMeta
}

// relAck is the unreliable control frame. cum acknowledges all sequence
// numbers ≤ cum; saw, when nonzero, reports an out-of-order frame held in
// the receiver's buffer (suppressing its retransmit timer); nack requests
// an immediate retransmit of nackSeq (corrupt arrival). sess names the
// receiver's current session — the sender ignores ACKs from older sessions.
// echoTS, when nonzero, echoes the sentAt timestamp of the frame that
// provoked this ACK (the RTT measurement channel). ecn echoes the
// congestion-experienced mark a fat-tree switch set on the provoking data
// frame, feeding the sender's ECN backoff.
type relAck struct {
	cum     uint64
	saw     uint64
	sess    uint64
	echoTS  sim.Time
	nack    bool
	nackSeq uint64
	ecn     bool
}

// relAckBytes is the modeled wire size of an ACK/NACK control frame.
const relAckBytes = 16

// relEntry is one unacknowledged outbound frame.
type relEntry struct {
	seq      uint64
	kind     string
	size     int64
	meta     *wireMeta
	attempts int
	timer    sim.Event
}

// relChan is the sender-side state toward one destination.
type relChan struct {
	dst      network.NodeID
	sess     uint64 // channel session (bumped by HealPeer)
	nextSeq  uint64 // last assigned sequence number
	base     uint64 // highest cumulatively acknowledged sequence number
	inflight map[uint64]*relEntry
	pending  []*relEntry // assigned a seq, waiting for window space
	dead     bool
	// deadInfo records when and why the peer was declared dead, so
	// NeighborFailedError and the fencing stats can distinguish an explicit
	// crash from retry-budget exhaustion (congestion/loss).
	deadInfo PeerDeadInfo
	// Jacobson/Karels RTT estimator state, fed by ACK timestamp echoes.
	// srtt == 0 means "no sample yet". Pure bookkeeping: it changes no
	// events unless Reliability.AdaptiveRTO arms the adaptive timeout.
	srtt   sim.Time
	rttvar sim.Time
	// health is the link-health EWMA in [0, 1]: 1 = clean, pulled toward 0
	// by retransmits and inflated RTT samples, toward 1 by clean exchanges.
	health float64
	// ecnBackoff is the multiplicative RTO stretch driven by echoed ECN
	// marks: 0 = no congestion seen (no stretch), otherwise doubles per
	// marked ACK up to ecnBackoffCap and halves back toward 0 on unmarked
	// ACKs. Only a congested fat-tree fabric ever sets marks, so every
	// other topology keeps this at 0 and its traces unchanged.
	ecnBackoff int
}

// ecnBackoffCap bounds the ECN-driven RTO stretch multiplier.
const ecnBackoffCap = 8

// relRecv is the receiver-side state from one source.
type relRecv struct {
	sess     uint64 // adopted sender session (highest seen)
	expected uint64 // next in-order sequence number
	buf      map[uint64]*bufFrame
	// struck records sequence numbers that already cost the sender an SDC
	// strike in this session, so a retransmission of the same frame — even
	// one still carrying a stale checksum — can never double-count.
	struck map[uint64]bool
}

type bufFrame struct {
	m    *network.Message
	meta *wireMeta
}

// reliability is one NIC's reliable-delivery engine.
type reliability struct {
	n     *NIC
	cfg   config.ReliabilityConfig
	chans map[network.NodeID]*relChan
	recvs map[network.NodeID]*relRecv
	// sessTo outlives channel teardown: HealPeer drops a dead channel and
	// bumps the session here, so the rebuilt channel opens a space the
	// receiver has never seen and adopts lazily.
	sessTo     map[network.NodeID]uint64
	onPeerDead []func(peer network.NodeID)
}

func newReliability(n *NIC, cfg config.ReliabilityConfig) *reliability {
	return &reliability{
		n:      n,
		cfg:    cfg,
		chans:  make(map[network.NodeID]*relChan),
		recvs:  make(map[network.NodeID]*relRecv),
		sessTo: make(map[network.NodeID]uint64),
	}
}

func (r *reliability) chanTo(dst network.NodeID) *relChan {
	ch := r.chans[dst]
	if ch == nil {
		ch = &relChan{dst: dst, sess: r.sessTo[dst], health: 1, inflight: make(map[uint64]*relEntry)}
		r.chans[dst] = ch
	}
	return ch
}

func (r *reliability) recvFrom(src network.NodeID) *relRecv {
	rc := r.recvs[src]
	if rc == nil {
		rc = &relRecv{expected: 1, buf: make(map[uint64]*bufFrame), struck: make(map[uint64]bool)}
		r.recvs[src] = rc
	}
	return rc
}

// PeerDead reports whether the reliability layer has given up on a peer.
func (n *NIC) PeerDead(peer network.NodeID) bool {
	if n.rel == nil {
		return false
	}
	ch := n.rel.chans[peer]
	return ch != nil && ch.dead
}

// send assigns the next sequence number toward m.Dst and transmits the
// frame if the window has room, otherwise queues it.
func (r *reliability) send(m *network.Message) {
	meta, ok := m.Payload.(*wireMeta)
	if !ok {
		// Non-data payloads (epoch announcements) bypass reliability.
		r.n.emit(m)
		return
	}
	if r.n.unreliableMatch(meta.matchBits) {
		// Unreliable-datagram class (heartbeats): best-effort, never queued
		// behind a window and never absorbed by a dead-channel verdict —
		// they must keep flowing so a healed partition can be observed.
		r.n.emit(m)
		return
	}
	ch := r.chanTo(m.Dst)
	if ch.dead {
		r.n.stats.SendsToDeadPeer++
		return
	}
	ch.nextSeq++
	e := &relEntry{seq: ch.nextSeq, kind: m.Kind, size: m.Size, meta: meta}
	if len(ch.inflight) < r.cfg.WindowSize {
		r.transmit(ch, e)
	} else {
		ch.pending = append(ch.pending, e)
	}
}

// defaultMinRTO floors the adaptive timeout when MinRTO is unset, so a
// string of identical RTT samples cannot land the timer exactly on the
// ACK's arrival instant.
const defaultMinRTO = 1 * sim.Microsecond

// rto computes the retransmission timeout for a frame of the given size on
// its k-th attempt (1-based). The static formula is a base plus a size-
// proportional term; with AdaptiveRTO armed and at least one RTT sample,
// the base becomes the Jacobson/Karels estimate srtt + srtt/8 + 4*rttvar
// (the srtt/8 guard keeps the timer off the expected ACK instant when
// rttvar has converged to zero), floored at MinRTO. Either way the result
// doubles per prior attempt, capped at MaxBackoff.
func (r *reliability) rto(ch *relChan, size int64, attempts int) sim.Time {
	var t sim.Time
	if r.cfg.AdaptiveRTO && ch.srtt > 0 {
		t = ch.srtt + ch.srtt/8 + 4*ch.rttvar + r.cfg.RTOPerKB*sim.Time(size/1024+1)
		min := r.cfg.MinRTO
		if min <= 0 {
			min = defaultMinRTO
		}
		if t < min {
			t = min
		}
	} else {
		t = r.cfg.RTOBase + r.cfg.RTOPerKB*sim.Time(size/1024+1)
	}
	if ch.ecnBackoff > 0 {
		// Congestion-experienced marks echoed by the peer: stretch the
		// timeout multiplicatively so retransmissions back off before the
		// retry budget burns down on a merely-congested (not lossy) path.
		t *= sim.Time(ch.ecnBackoff)
	}
	for i := 1; i < attempts; i++ {
		t *= 2
		if t >= r.cfg.MaxBackoff {
			break
		}
	}
	if t > r.cfg.MaxBackoff {
		t = r.cfg.MaxBackoff
	}
	return t
}

// sampleRTT feeds one timestamp-echo RTT measurement into the channel's
// Jacobson/Karels estimator and the link-health EWMA. Estimator state is
// pure bookkeeping — it never schedules events — so maintaining it
// unconditionally keeps traces identical while AdaptiveRTO is off.
func (r *reliability) sampleRTT(ch *relChan, rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	r.n.stats.RTTSamples++
	inflated := ch.srtt > 0 && rtt > 2*ch.srtt
	if ch.srtt == 0 {
		ch.srtt = rtt
		ch.rttvar = rtt / 2
	} else {
		diff := rtt - ch.srtt
		if diff < 0 {
			diff = -diff
		}
		ch.rttvar += (diff - ch.rttvar) / 4
		ch.srtt += (rtt - ch.srtt) / 8
	}
	if inflated {
		r.noteLink(ch, 0.5)
	} else {
		r.noteLink(ch, 1)
	}
}

// noteLink folds one link observation into the health EWMA: 1 for a clean
// exchange, 0.5 for an inflated RTT sample, 0 for a retransmission.
func (r *reliability) noteLink(ch *relChan, good float64) {
	ch.health += (good - ch.health) / 8
}

// transmit puts a frame on the wire and arms its retransmit timer.
func (r *reliability) transmit(ch *relChan, e *relEntry) {
	ch.inflight[e.seq] = e
	e.attempts++
	if e.attempts > 1 {
		// A retransmission re-reads the send buffer, so it carries a
		// freshly computed end-to-end checksum (on a copied wireMeta: the
		// pointer of earlier transmissions is shared with the wire). A
		// frame NACKed for silent wire corruption goes out clean; one
		// whose source buffer corrupted goes out self-consistent — which
		// is exactly what verified collectives exist to catch.
		e.meta = e2eRefresh(e.meta)
	}
	r.n.emit(&network.Message{
		Src:     r.n.id,
		Dst:     ch.dst,
		Size:    e.size,
		Kind:    e.kind,
		Payload: &relEnvelope{seq: e.seq, sess: ch.sess, sentAt: r.n.eng.Now(), meta: e.meta},
	})
	seq := e.seq
	e.timer = r.n.eng.After(r.rto(ch, e.size, e.attempts), func() {
		r.onTimeout(ch, seq)
	})
}

// onTimeout handles a retransmit-timer expiry for one frame.
func (r *reliability) onTimeout(ch *relChan, seq uint64) {
	e := ch.inflight[seq]
	if e == nil || ch.dead {
		return // acknowledged (or channel abandoned) before the timer fired
	}
	if e.attempts >= r.cfg.RetryBudget {
		r.declareDead(ch, PeerDeadRetries)
		return
	}
	r.n.stats.Retransmits++
	r.noteLink(ch, 0)
	r.transmit(ch, e)
}

// onAck processes an inbound ACK/NACK from peer src.
func (r *reliability) onAck(src network.NodeID, a *relAck) {
	ch := r.chans[src]
	if ch == nil || ch.dead {
		return
	}
	if a.sess != ch.sess {
		// An ACK from a previous channel session (late arrival across a
		// heal, or the receiver has not adopted the new session yet): it
		// describes a sequence space this channel no longer uses.
		r.n.stats.StaleSessionDrops++
		return
	}
	if a.echoTS > 0 {
		r.sampleRTT(ch, r.n.eng.Now()-a.echoTS)
	}
	if a.ecn {
		// The path is congested, not broken: widen the RTO stretch.
		if ch.ecnBackoff == 0 {
			ch.ecnBackoff = 2
		} else if ch.ecnBackoff < ecnBackoffCap {
			ch.ecnBackoff *= 2
		}
		r.n.stats.ECNBackoffs++
	} else if ch.ecnBackoff > 0 {
		// Unmarked ACK: decay the stretch back toward nothing.
		ch.ecnBackoff /= 2
		if ch.ecnBackoff < 2 {
			ch.ecnBackoff = 0
		}
	}
	if a.nack {
		if e := ch.inflight[a.nackSeq]; e != nil {
			e.timer.Cancel()
			if e.attempts >= r.cfg.RetryBudget {
				r.declareDead(ch, PeerDeadRetries)
				return
			}
			r.n.stats.Retransmits++
			r.noteLink(ch, 0)
			r.transmit(ch, e)
		}
		return
	}
	if a.saw > a.cum {
		// The peer holds this frame out of order: disarm its timer. If the
		// later cumulative ACK is lost, a duplicate of the gap frame will
		// provoke a fresh cumulative ACK, so progress is still guaranteed.
		if e := ch.inflight[a.saw]; e != nil {
			e.timer.Cancel()
			e.timer = sim.Event{}
		}
	}
	if a.cum > ch.base {
		for s := ch.base + 1; s <= a.cum; s++ {
			if e := ch.inflight[s]; e != nil {
				e.timer.Cancel()
				delete(ch.inflight, s)
			}
		}
		ch.base = a.cum
		// Window slid open: launch queued frames in order.
		for len(ch.pending) > 0 && len(ch.inflight) < r.cfg.WindowSize {
			e := ch.pending[0]
			ch.pending = ch.pending[1:]
			r.transmit(ch, e)
		}
	}
}

// onData processes an inbound sequenced data frame.
func (r *reliability) onData(m *network.Message, env *relEnvelope) {
	rc := r.recvFrom(m.Src)
	if m.ECN {
		// A congested fat-tree port marked this frame in flight. The mark is
		// fabric metadata (set by a switch, not carried in the payload), so
		// it survives corruption and is echoed on every ACK shape below.
		r.n.stats.ECNMarksSeen++
	}
	if m.Corrupted {
		// A corrupt frame's header fields are untrusted: NACK it under the
		// current session without adopting anything from it.
		r.n.stats.NacksSent++
		r.sendAck(m.Src, &relAck{cum: rc.expected - 1, sess: rc.sess, nack: true, nackSeq: env.seq, ecn: m.ECN})
		return
	}
	if env.sess != rc.sess {
		if env.sess < rc.sess {
			// Leftover of a pre-heal session still in flight: its sequence
			// numbers belong to an abandoned space.
			r.n.stats.StaleSessionDrops++
			return
		}
		// The sender healed this channel and opened a fresh session:
		// adopt it and restart the in-order space.
		rc.sess = env.sess
		rc.expected = 1
		rc.buf = make(map[uint64]*bufFrame)
		rc.struck = make(map[uint64]bool)
		r.n.stats.SessionResets++
	}
	// Materialize silent wire corruption (the link CRC passed, so the
	// flipped bits are application data now) and verify the end-to-end
	// payload checksum before the frame can be delivered or buffered.
	meta := env.meta
	if m.SilentCorrupt {
		meta = e2eMaterialize(meta)
		m.SilentCorrupt = false
	}
	if env.seq >= rc.expected && r.n.e2eFails(meta) {
		// The link accepted this frame but the payload sum is wrong: the
		// corruption happened end-to-end (sender buffer, DMA, or silent
		// wire flips). NACK it for retransmission and indict the sender —
		// once per (session, sequence), so the retransmission of the same
		// frame can never count as a second strike.
		r.n.noteE2EFail()
		if !rc.struck[env.seq] {
			rc.struck[env.seq] = true
			r.n.addStrike(m.Src)
		}
		r.n.stats.NacksSent++
		r.sendAck(m.Src, &relAck{cum: rc.expected - 1, sess: rc.sess, nack: true, nackSeq: env.seq, ecn: m.ECN})
		return
	}
	switch {
	case env.seq < rc.expected:
		// Duplicate of an already-delivered frame (a lost ACK made the
		// sender retransmit): drop it and refresh the cumulative ACK.
		r.n.stats.DupesDropped++
		r.sendAck(m.Src, &relAck{cum: rc.expected - 1, sess: rc.sess, echoTS: env.sentAt, ecn: m.ECN})
	case env.seq == rc.expected:
		r.n.dispatch(m, meta)
		rc.expected++
		// Drain any contiguously buffered successors.
		for {
			bf := rc.buf[rc.expected]
			if bf == nil {
				break
			}
			delete(rc.buf, rc.expected)
			r.n.dispatch(bf.m, bf.meta)
			rc.expected++
		}
		r.sendAck(m.Src, &relAck{cum: rc.expected - 1, sess: rc.sess, echoTS: env.sentAt, ecn: m.ECN})
	default: // out of order: hold it, report the gap
		if rc.buf[env.seq] == nil {
			rc.buf[env.seq] = &bufFrame{m: m, meta: meta}
		} else {
			r.n.stats.DupesDropped++
		}
		r.sendAck(m.Src, &relAck{cum: rc.expected - 1, sess: rc.sess, saw: env.seq, echoTS: env.sentAt, ecn: m.ECN})
	}
}

// sendAck emits an unreliable control frame back to the peer.
func (r *reliability) sendAck(dst network.NodeID, a *relAck) {
	if !a.nack {
		r.n.stats.AcksSent++
	}
	if a.ecn {
		r.n.stats.ECNEchoed++
	}
	r.n.emit(&network.Message{
		Src:     r.n.id,
		Dst:     dst,
		Size:    relAckBytes,
		Kind:    "rel_ack",
		Payload: a,
	})
}

// declareDead abandons a peer — because the retry budget is exhausted or
// because an explicit crash was reported — recording when and why. All
// timers are disarmed, queued frames are discarded, and upper layers are
// notified so they can route around the failure.
func (r *reliability) declareDead(ch *relChan, reason PeerDeadReason) {
	ch.dead = true
	ch.health = 0
	ch.deadInfo = PeerDeadInfo{At: r.n.eng.Now(), Reason: reason}
	r.n.stats.PeersDeclaredDead++
	switch reason {
	case PeerDeadCrash:
		r.n.stats.PeersDeclaredCrashed++
	case PeerDeadPartition:
		r.n.stats.PeersDeclaredPartitioned++
	case PeerDeadCorrupt:
		r.n.stats.PeersDeclaredCorrupt++
	}
	for s := ch.base + 1; s <= ch.nextSeq; s++ {
		if e := ch.inflight[s]; e != nil {
			e.timer.Cancel()
			delete(ch.inflight, s)
		}
	}
	ch.pending = nil
	for _, fn := range r.onPeerDead {
		fn(ch.dst)
	}
}

// resetPeer forgets all state toward and from one peer: the receiver
// adopted a newer incarnation epoch, so sequence numbers restart from
// scratch and a dead verdict against the previous incarnation is void.
// Fresh state is rebuilt lazily on the next send/receive.
func (r *reliability) resetPeer(peer network.NodeID) {
	if ch := r.chans[peer]; ch != nil {
		for s := ch.base + 1; s <= ch.nextSeq; s++ {
			if e := ch.inflight[s]; e != nil {
				e.timer.Cancel()
				delete(ch.inflight, s)
			}
		}
		delete(r.chans, peer)
	}
	delete(r.recvs, peer)
}

// heal clears a dead verdict against a peer after a partition (or a false
// suspicion) ends: the dead channel is dropped and the next send opens a
// fresh session, whose higher session number the receiver adopts lazily —
// no incarnation bump, no epoch announcement, no receiver coordination.
// A live channel is left untouched (nothing to heal).
func (r *reliability) heal(peer network.NodeID) {
	ch := r.chans[peer]
	if ch == nil || !ch.dead {
		return
	}
	r.sessTo[peer] = ch.sess + 1
	delete(r.chans, peer)
	r.n.stats.PeersHealed++
}

// cancelAllTimers disarms every retransmit timer (crash teardown). Map
// iteration order is irrelevant here: cancellation is lazy bookkeeping and
// schedules no events.
func (r *reliability) cancelAllTimers() {
	for _, ch := range r.chans {
		for s := ch.base + 1; s <= ch.nextSeq; s++ {
			if e := ch.inflight[s]; e != nil {
				e.timer.Cancel()
			}
		}
	}
}
