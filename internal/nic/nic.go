// Package nic models an RDMA network interface in the style the paper
// assumes: command queues rung by doorbells, DMA engines, one-sided put/get
// with match-bits-addressed target regions, counting events — plus the
// paper's contribution, the GPU-TN trigger-list hardware extension (§3).
//
// The trigger list holds entries of {network operation, tag, counter,
// threshold}. Memory-mapped writes of a tag land in a FIFO; the NIC matches
// each write against the list, increments the entry's counter, and launches
// the pre-staged operation when the counter reaches the threshold. The
// relaxed synchronization model (§3.2) lets tag writes arrive before the
// host registers the operation: the NIC allocates a placeholder entry and,
// if the counter has already met the threshold by registration time, fires
// immediately.
package nic

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
)

// OpKind enumerates NIC command types.
type OpKind int

const (
	// OpPut writes a local buffer into a match-bits-addressed region on
	// the target node (one-sided).
	OpPut OpKind = iota
	// OpGet reads a match-bits-addressed region on the target node into a
	// local buffer (one-sided).
	OpGet
	// OpAtomic applies an arithmetic operation to a remote region
	// (PtlAtomic); no reply is generated.
	OpAtomic
	// OpFetchAtomic applies an arithmetic operation and returns the prior
	// value to the initiator (PtlFetchAtomic).
	OpFetchAtomic
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAtomic:
		return "atomic"
	case OpFetchAtomic:
		return "fetch-atomic"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// AtomicOp enumerates the remote atomic operations (a subset of the
// Portals 4 atomic op list sufficient for the evaluated workloads).
type AtomicOp int

const (
	// AtomicSum adds the operand to the target cell.
	AtomicSum AtomicOp = iota
	// AtomicMin stores min(cell, operand).
	AtomicMin
	// AtomicMax stores max(cell, operand).
	AtomicMax
	// AtomicSwap stores the operand and returns the prior value.
	AtomicSwap
)

func (o AtomicOp) String() string {
	switch o {
	case AtomicSum:
		return "sum"
	case AtomicMin:
		return "min"
	case AtomicMax:
		return "max"
	case AtomicSwap:
		return "swap"
	default:
		return fmt.Sprintf("AtomicOp(%d)", int(o))
	}
}

// Command is a fully staged network operation: everything the NIC needs to
// execute the transfer without further host involvement.
type Command struct {
	Kind      OpKind
	Target    network.NodeID
	MatchBits uint64 // addresses the remote region
	Size      int64  // payload bytes
	Data      any    // opaque payload forwarded to the target region
	// Atomic selects the operation of OpAtomic / OpFetchAtomic commands.
	Atomic AtomicOp
	// LocalCompletion, when non-nil, is incremented once the local buffer
	// is reusable (put: after DMA read; get/fetch-atomic: after the reply
	// lands) — the GPU-visible completion hook of §4.2.4.
	LocalCompletion *sim.Counter
	// OnLocalComplete, when non-nil, runs at local completion time.
	OnLocalComplete func()
}

// Deferred is a payload resolved at DMA time rather than at command
// construction time. Real NICs read the send buffer when the operation
// executes, not when it is posted; pre-posted GDS commands and GPU-TN
// trigger entries rely on this to transmit values the GPU produced after
// registration.
type Deferred func() any

// Delivery describes an inbound operation handed to a target region.
type Delivery struct {
	// Kind is the operation that hit the region: OpPut for landings,
	// OpGet for served reads, OpAtomic/OpFetchAtomic for atomics.
	Kind      OpKind
	From      network.NodeID
	MatchBits uint64
	Size      int64
	Data      any
	At        sim.Time
}

// Region is a match-bits-exposed landing zone for one-sided operations,
// analogous to a Portals list entry on a priority list. Regions are
// searched in exposure order; the first entry whose (MatchBits,
// IgnoreBits, Src) accepts the inbound operation wins.
type Region struct {
	MatchBits uint64
	// IgnoreBits masks bits out of the match comparison (Portals ME
	// ignore bits); a region with all bits ignored is a wildcard.
	IgnoreBits uint64
	// SrcMatch, when true, restricts the region to messages from Src.
	SrcMatch bool
	Src      network.NodeID
	// UseOnce unlinks the region after its first match (PTL_ME_USE_ONCE).
	UseOnce bool
	// Counter, when non-nil, is incremented once per completed delivery —
	// how PGAS-style target-side notification is built (§4.2.5).
	Counter *sim.Counter
	// OnDelivery, when non-nil, observes each delivery after the counter
	// bump (data landing, poll-flag setting, etc.).
	OnDelivery func(d Delivery)
	// ReadBack, when non-nil, serves OpGet requests for this region.
	ReadBack func(size int64) any
	// ApplyAtomic, when non-nil, serves OpAtomic/OpFetchAtomic requests:
	// it applies the operation to the region's storage and returns the
	// prior value. Atomic operations to regions without it panic.
	ApplyAtomic func(op AtomicOp, operand any) (prior any)
	// Gate, when non-nil, is consulted before each delivery: false means
	// the region's portal is flow-control disabled and the message is
	// dropped (counted in FlowCtlDrops), Portals-style. The region is not
	// unlinked by a gated delivery, even with UseOnce.
	Gate func() bool
}

// accepts reports whether the region matches an inbound operation.
func (r *Region) accepts(matchBits uint64, src network.NodeID) bool {
	if (r.MatchBits &^ r.IgnoreBits) != (matchBits &^ r.IgnoreBits) {
		return false
	}
	if r.SrcMatch && r.Src != src {
		return false
	}
	return true
}

// LookupModel abstracts the trigger-list tag-match hardware (§3.3): the
// associative CAM the prototype uses, a hash table, or a linked-list walk.
type LookupModel interface {
	// MatchLatency returns the cost of locating a tag given the current
	// list length and the (0-based) position at which the tag was found
	// (position == listLen means a miss / full scan).
	MatchLatency(listLen, position int) sim.Time
	// Name identifies the model in benchmark output.
	Name() string
}

// AssociativeLookup is the constant-time CAM match the paper's prototype
// adopts for ≤16 simultaneously active entries.
type AssociativeLookup struct{ Latency sim.Time }

// MatchLatency implements LookupModel.
func (a AssociativeLookup) MatchLatency(listLen, position int) sim.Time { return a.Latency }

// Name implements LookupModel.
func (a AssociativeLookup) Name() string { return "associative" }

// HashLookup models a hash-table structure: constant probe cost slightly
// above the CAM, independent of list length.
type HashLookup struct{ Latency sim.Time }

// MatchLatency implements LookupModel.
func (h HashLookup) MatchLatency(listLen, position int) sim.Time { return h.Latency }

// Name implements LookupModel.
func (h HashLookup) Name() string { return "hash" }

// LinkedListLookup models the naive linked-list traversal: cost grows with
// the position of the matching entry.
type LinkedListLookup struct{ PerEntry sim.Time }

// MatchLatency implements LookupModel.
func (l LinkedListLookup) MatchLatency(listLen, position int) sim.Time {
	return sim.Time(position+1) * l.PerEntry
}

// Name implements LookupModel.
func (l LinkedListLookup) Name() string { return "linked-list" }

// DynamicWrite is an extended trigger write carrying optional override
// fields computed on the GPU (§3.4 "GPU-TN and Dynamic Communication"):
// instead of merely writing a tag, the kernel can contribute the target
// node, the transfer size, or the remote match bits. Each present field
// costs the GPU an additional system-scope store; the last write's
// overrides win if several arrive for the same entry.
type DynamicWrite struct {
	Tag uint64

	HasTarget bool
	Target    network.NodeID

	HasSize bool
	Size    int64

	HasMatchBits bool
	MatchBits    uint64
}

// Fields reports how many override fields are present (the GPU-side
// divergence/store cost is proportional to this).
func (w DynamicWrite) Fields() int {
	n := 0
	if w.HasTarget {
		n++
	}
	if w.HasSize {
		n++
	}
	if w.HasMatchBits {
		n++
	}
	return n
}

// triggerEntry is one row of the trigger list (Figure 5).
type triggerEntry struct {
	tag       uint64
	counter   int64
	threshold int64
	op        *Command
	hasOp     bool
	fired     bool
	// regSeq identifies this registration instance for the invariant
	// auditor's trigger-once check: re-registering a consumed entry is a
	// NEW instance (fresh regSeq), so legitimate tag reuse (heartbeats)
	// never trips the exactly-once predicate while a genuine double fire
	// of one instance always does.
	regSeq uint64
	// overrides accumulates dynamic fields from trigger writes (§3.4).
	overrides DynamicWrite
}

// wireMeta travels inside fabric messages.
type wireMeta struct {
	kind      OpKind
	matchBits uint64
	data      any
	// get / fetch-atomic support
	replyMatch uint64
	reqSize    int64
	// atomic support
	atomicOp AtomicOp
	fetch    bool
	// end-to-end payload checksum (e2eHas gates verification so frames
	// from checksum-less sources pass vacuously)
	e2eSum uint32
	e2eHas bool
}

// Stats aggregates NIC observability counters.
type Stats struct {
	CommandsExecuted  int64
	TriggerWrites     int64
	TriggerFires      int64
	PlaceholdersMade  int64
	ImmediateFires    int64 // fired at registration time (relaxed sync)
	DynamicFires      int64 // fires with GPU-provided overrides (§3.4)
	DeliveredMessages int64
	DroppedTriggers   int64 // trigger FIFO/list overflow (bounded configs only)

	// Bounded-resource counters (all zero with a zero ResourceConfig,
	// except the high-water marks, which are pure observation).
	TriggerListHighWater int64 // peak simultaneously active trigger entries
	PlaceholderHighWater int64 // peak unregistered relaxed-sync placeholders
	CmdQueueHighWater    int64 // peak command-queue backlog
	TrigFIFOHighWater    int64 // peak trigger-FIFO occupancy
	CmdQueueStalls       int64 // PostCommand calls that blocked on a full queue
	CmdDeferred          int64 // non-blocking commands deferred by a full queue
	RegistrationRejects  int64 // RegisterTriggered calls rejected (list full)
	FlowCtlDrops         int64 // deliveries dropped by a disabled portal gate

	// Reliable-delivery counters (all zero when reliability is off).
	Retransmits       int64 // data frames resent after timeout or NACK
	AcksSent          int64
	NacksSent         int64 // corrupt frames rejected back to the sender
	DupesDropped      int64 // duplicate frames suppressed at the receiver
	CorruptDropped    int64 // corrupt frames discarded (unreliable mode)
	PeersDeclaredDead int64 // peers abandoned after retry-budget exhaustion
	SendsToDeadPeer   int64 // frames discarded because the peer is dead
	LostTriggerWrites int64 // MMIO trigger writes lost by the injector

	// Crash-recovery / incarnation-epoch counters (all zero without a
	// scheduled crash).
	Crashes              int64
	Restarts             int64
	DownDrops            int64 // inbound frames dropped while the NIC was down
	StaleSrcDrops        int64 // frames from a peer's dead incarnation
	StaleDstDrops        int64 // frames addressed to this NIC's previous incarnation
	EpochResets          int64 // per-peer reliability resets on epoch adoption
	FencedCommands       int64 // commands/completions abandoned mid-flight by a crash
	FencedTriggers       int64 // trigger writes/fires fenced by a crash
	FencedDeliveries     int64 // inbound DMA completions fenced by a crash
	PeersDeclaredCrashed int64 // peer-dead declarations caused by an explicit crash report
	CanceledTriggers     int64 // pending entries removed by CancelTriggered
	UnmatchedDrops       int64 // post-restart inbound ops matching no region

	// Partition / gray-failure counters (all zero without partitions,
	// heals, or session churn; tested).
	PeersDeclaredPartitioned int64 // peer-dead declarations diagnosed as partitions
	PeersHealed              int64 // dead verdicts cleared by HealPeer
	SessionResets            int64 // receiver adoptions of a healed channel's fresh session
	StaleSessionDrops        int64 // frames/ACKs from an abandoned channel session
	RTTSamples               int64 // timestamp-echo RTT measurements folded into SRTT/RTTVAR

	// End-to-end integrity counters (all zero without E2EChecksum or SDC
	// injection; tested).
	E2EChecksumFails     int64 // frames whose e2e payload checksum mismatched
	SDCDetected          int64 // deduplicated silent-corruption strikes recorded
	SDCUndetected        int64 // corrupt payloads the NIC delivered unflagged
	PeersDeclaredCorrupt int64 // peer-dead declarations caused by quarantine
	// FirstE2EFailAt stamps the first e2e checksum failure (meaningful
	// only when E2EChecksumFails > 0); the SDC ablation subtracts the
	// injection time to report frame-layer detection latency.
	FirstE2EFailAt sim.Time

	// Fail-slow counters (all zero without a SlowPlan or slow-detection
	// verdicts; tested). The injection side counts slowdowns this NIC
	// suffered; the observability side counts verdicts and hedges this
	// node's health/collective layers recorded.
	SlowCmdStretched  int64 // commands whose parse latency a slow window stretched
	SlowCmdStalls     int64 // commands that additionally drew a stall
	SlowDMAStretched  int64 // DMA transfers stretched by a slow window
	PeersDeclaredSlow int64 // Slow verdicts recorded against peers
	SlowRecoveries    int64 // Slow verdicts lifted after the peer recovered
	HedgedSends       int64 // collective hops re-sent via the hedge path
	// MaxSlowdownSeen is the detector's largest observed slowdown estimate
	// (reciprocal of the lowest progress score a peer reached), ×100 fixed
	// point. 0 = never estimated.
	MaxSlowdownSeen int64

	// ECN congestion-feedback counters (all zero unless a fat-tree port
	// crossed its marking threshold; tested).
	ECNMarksSeen int64 // inbound data frames carrying a congestion mark
	ECNEchoed    int64 // ACK/NACK frames that echoed a mark to the sender
	ECNBackoffs  int64 // sender RTO-stretch increases driven by echoed marks
}

// NIC is one node's network interface.
type NIC struct {
	eng    *sim.Engine
	cfg    config.NICConfig
	id     network.NodeID
	fabric network.Transport
	inj    *fault.Injector
	rel    *reliability // nil unless cfg.Reliability.Enabled

	cmdQ     *sim.Queue[*Command]
	trigFIFO *sim.Queue[DynamicWrite]
	entries  []*triggerEntry
	regions  []*Region
	lookup   LookupModel

	// Bounded command queue support (Resources.CmdQueueDepth > 0):
	// cmdPending holds deferred commands from non-blocking sources,
	// cmdSlots wakes blocked PostCommand callers when slots free up.
	cmdPending []*Command
	cmdSlots   *sim.Signal

	// ioBusLatency is added to doorbell/trigger MMIO paths for the
	// discrete-GPU ablation; zero in the coherent-APU default.
	ioBusLatency sim.Time

	// replySeq generates unique reply match bits for outstanding gets.
	replySeq uint64

	// Crash-stop state: down marks a crashed-and-not-restarted NIC, inc is
	// the incarnation epoch (1 until the first restart), and peerEpoch is
	// this NIC's view of each peer's incarnation (0 entries read as 1).
	down      bool
	downAt    sim.Time
	inc       int64
	peerEpoch []int64

	// unreliableMB lists match-bits regions whose puts are sent as
	// best-effort datagrams, bypassing the reliability layer (heartbeats).
	// Survives crashes: it is registration metadata, not NIC state.
	unreliableMB []uint64

	// strikes counts deduplicated SDC strikes per sending peer — evidence
	// the membership layer reads to quarantine corrupt ranks. Like
	// unreliableMB it survives crashes: corruption evidence against a peer
	// does not evaporate because the observer rebooted.
	strikes map[network.NodeID]int64

	// au is the always-on invariant auditor (nil-safe hooks); regSeqNext
	// numbers trigger-list registration instances for its trigger-once
	// check.
	au         *audit.Auditor
	regSeqNext uint64

	// Seeded-violation debug knobs (config.FaultConfig.Debug*), cached by
	// SetInjector; the bools record that the one-shot violation happened.
	dbgDoubleFire   bool
	dbgStaleDeliver bool
	dblFired        bool
	staleDelivered  bool

	stats Stats
}

// New creates a NIC bound to a fabric port and starts its internal
// command and trigger pipelines.
func New(eng *sim.Engine, cfg config.NICConfig, id network.NodeID, fabric network.Transport) *NIC {
	n := &NIC{
		eng:      eng,
		cfg:      cfg,
		id:       id,
		fabric:   fabric,
		cmdQ:     sim.NewQueue[*Command](eng),
		trigFIFO: sim.NewQueue[DynamicWrite](eng),
		lookup:   AssociativeLookup{Latency: cfg.TriggerMatchLatency},
		inc:      1,
	}
	n.cmdSlots = sim.NewSignal(eng)
	if cfg.Reliability.Enabled {
		n.rel = newReliability(n, cfg.Reliability)
	}
	fabric.Bind(id, n.deliver)
	eng.Go(fmt.Sprintf("nic.%d.cmd", id), n.runCommands)
	eng.Go(fmt.Sprintf("nic.%d.trig", id), n.runTriggers)
	return n
}

// ID returns the NIC's fabric port.
func (n *NIC) ID() network.NodeID { return n.id }

// Stats returns a snapshot of the NIC's counters.
func (n *NIC) Stats() Stats { return n.stats }

// Config returns the NIC's configuration (resource defaults, latencies).
func (n *NIC) Config() config.NICConfig { return n.cfg }

// Injector returns the fault injector the NIC draws from; upper layers use
// it to reach the SDC plan (faulty-reducer windows, injection summaries).
func (n *NIC) Injector() *fault.Injector { return n.inj }

// SetLookupModel replaces the trigger-list match hardware (ablation hook).
func (n *NIC) SetLookupModel(m LookupModel) { n.lookup = m }

// NoteSlowPeer records a Slow verdict this node's health layer issued
// against a peer. Observability only: unlike MarkPeerCrashed /
// MarkPeerPartitioned, a straggler's channels stay fully usable — the
// mitigation is routing (ring exclusion, hedged hops), not condemnation.
func (n *NIC) NoteSlowPeer() { n.stats.PeersDeclaredSlow++ }

// NoteSlowRecovered records a Slow verdict lifting.
func (n *NIC) NoteSlowRecovered() { n.stats.SlowRecoveries++ }

// NoteHedgedSend records one collective hop re-sent via the hedge path.
func (n *NIC) NoteHedgedSend() { n.stats.HedgedSends++ }

// NoteSlowdownEstimate folds one detector slowdown estimate (reciprocal
// progress score) into the max-observed stat, ×100 fixed point.
func (n *NIC) NoteSlowdownEstimate(factor float64) {
	if v := int64(factor * 100); v > n.stats.MaxSlowdownSeen {
		n.stats.MaxSlowdownSeen = v
	}
}

// MarkUnreliable registers a match-bits region as unreliable-datagram
// class: puts addressed to it bypass the reliability layer entirely (no
// sequence numbers, no retransmits, never absorbed by a dead-peer
// verdict). Heartbeats use this so liveness evidence keeps flowing across
// a partition that has already killed the reliable channels. Idempotent.
func (n *NIC) MarkUnreliable(matchBits uint64) {
	for _, mb := range n.unreliableMB {
		if mb == matchBits {
			return
		}
	}
	n.unreliableMB = append(n.unreliableMB, matchBits)
}

// unreliableMatch reports whether matchBits was registered via
// MarkUnreliable. The list is tiny (heartbeats only), so a linear scan
// beats a map on the per-send hot path.
func (n *NIC) unreliableMatch(matchBits uint64) bool {
	for _, mb := range n.unreliableMB {
		if mb == matchBits {
			return true
		}
	}
	return false
}

// LinkHealth is the per-peer gray-failure score the reliability layer
// maintains: an EWMA in [0, 1] pulled toward 0 by retransmissions and
// inflated RTT samples, plus the raw Jacobson/Karels estimator state.
type LinkHealth struct {
	// Score is 1 for a clean link, 0 for a dead one; degradation shows up
	// as the EWMA sagging toward 0 while the link technically still works.
	Score  float64
	SRTT   sim.Time
	RTTVar sim.Time
	Dead   bool
}

// LinkHealth returns the health of the sender-side channel toward peer.
// ok is false when no channel exists (no traffic yet, or reliability off).
func (n *NIC) LinkHealth(peer network.NodeID) (LinkHealth, bool) {
	if n.rel == nil {
		return LinkHealth{}, false
	}
	ch := n.rel.chans[peer]
	if ch == nil {
		return LinkHealth{}, false
	}
	return LinkHealth{Score: ch.health, SRTT: ch.srtt, RTTVar: ch.rttvar, Dead: ch.dead}, true
}

// SetIOBusLatency configures the extra MMIO hop of a discrete-GPU system.
func (n *NIC) SetIOBusLatency(d sim.Time) { n.ioBusLatency = d }

// SetInjector installs the fault injector for NIC-local faults (command
// stalls, trigger-write loss/delay). Nil keeps the NIC fault-free.
func (n *NIC) SetInjector(in *fault.Injector) {
	n.inj = in
	cfg := in.Config()
	n.dbgDoubleFire = cfg.DebugDoubleFire
	n.dbgStaleDeliver = cfg.DebugStaleDeliver
}

// SetAuditor installs the invariant auditor. Nil (the default) keeps every
// hook a no-op.
func (n *NIC) SetAuditor(a *audit.Auditor) { n.au = a }

// nextRegSeq numbers a new trigger-list registration instance.
func (n *NIC) nextRegSeq() uint64 {
	n.regSeqNext++
	return n.regSeqNext
}

// OnPeerDead registers a callback invoked when the reliability layer gives
// up on a peer (retry budget exhausted). No-op without reliability.
func (n *NIC) OnPeerDead(fn func(peer network.NodeID)) {
	if n.rel != nil {
		n.rel.onPeerDead = append(n.rel.onPeerDead, fn)
	}
}

// send routes an outbound wire message through the reliability layer when
// one is configured, otherwise straight onto the fabric.
func (n *NIC) send(m *network.Message) {
	if n.rel != nil {
		n.rel.send(m)
		return
	}
	n.emit(m)
}

// ExposeRegion appends a target-side region to the match list (the
// Portals priority list). Earlier regions win ties.
func (n *NIC) ExposeRegion(r *Region) {
	n.regions = append(n.regions, r)
}

// matchRegion locates (and, for use-once entries, unlinks) the first
// region accepting the operation. It returns (nil, false) when nothing
// matches and (nil, true) when the matching region's Gate refused the
// delivery — a Portals-style flow-control drop the caller must absorb
// silently (the sender's recovery path resends after re-enable).
func (n *NIC) matchRegion(matchBits uint64, src network.NodeID) (*Region, bool) {
	for i, r := range n.regions {
		if r.accepts(matchBits, src) {
			if r.Gate != nil && !r.Gate() {
				n.stats.FlowCtlDrops++
				return nil, true
			}
			if r.UseOnce {
				n.regions = append(n.regions[:i], n.regions[i+1:]...)
			}
			return r, false
		}
	}
	return nil, false
}

// PostCommand rings the NIC doorbell with a staged command. The caller
// pays the MMIO doorbell cost; execution proceeds asynchronously on the
// NIC. This is the path HDN and GDS use to send, and the path GPU-TN's
// trigger entries use when they fire.
func (n *NIC) PostCommand(p *sim.Proc, c *Command) {
	p.Sleep(n.cfg.DoorbellLatency + n.ioBusLatency)
	if d := n.cfg.Resources.CmdQueueDepth; d > 0 {
		// Bounded queue: the doorbell write stalls (PCIe backpressure)
		// until the executor frees a slot and the deferred backlog drains.
		stalled := false
		for len(n.cmdPending) > 0 || n.cmdQ.Len() >= d {
			if !stalled {
				n.stats.CmdQueueStalls++
				stalled = true
			}
			n.cmdSlots.Wait(p)
		}
	}
	n.pushCmd(c)
}

// PostCommandAsync enqueues a command without a calling process (used by
// NIC-internal logic such as trigger fires, which already paid their way).
func (n *NIC) PostCommandAsync(c *Command) {
	n.enqueueCmd(c)
}

// RingDoorbell models an MMIO doorbell write from an agent that should not
// block on it (e.g. the GPU front-end ringing a GDS network-initiation
// point): the command lands on the NIC after the doorbell flight time.
func (n *NIC) RingDoorbell(c *Command) {
	n.eng.After(n.cfg.DoorbellLatency+n.ioBusLatency, func() { n.enqueueCmd(c) })
}

// TriggerWrite is the GPU's memory-mapped store of a tag to the trigger
// address (§3.1 step 3). The caller (a GPU work-item model) pays its own
// store cost; the write lands in the NIC's trigger FIFO after the MMIO
// flight time.
func (n *NIC) TriggerWrite(tag uint64) {
	n.TriggerWriteDynamic(DynamicWrite{Tag: tag})
}

// TriggerWriteDynamic is the §3.4 extension of TriggerWrite: the write
// additionally carries GPU-computed override fields that the NIC applies
// to the staged operation when the entry fires.
func (n *NIC) TriggerWriteDynamic(w DynamicWrite) {
	n.stats.TriggerWrites++
	lat := n.cfg.DoorbellLatency + n.ioBusLatency
	if n.inj != nil {
		drop, delay := n.inj.TriggerFault(int(n.id))
		if drop {
			// The MMIO store was lost on the bus: it never reaches the
			// trigger FIFO. Recovery is the GPU's re-write (tests) or the
			// relaxed-sync placeholder path absorbing the survivors.
			n.stats.LostTriggerWrites++
			return
		}
		lat += delay
	}
	ep := n.inc
	n.eng.After(lat, func() {
		if n.fenced(ep) {
			// The node crashed while the MMIO store was in flight: the
			// write from the dead incarnation never reaches the (new) FIFO.
			n.stats.FencedTriggers++
			return
		}
		if n.cfg.TriggerFIFODepth > 0 && n.trigFIFO.Len() >= n.cfg.TriggerFIFODepth {
			// A bounded FIFO applies backpressure in real hardware; the
			// model counts the event and drops, and tests assert this
			// never happens in the evaluated configurations.
			n.stats.DroppedTriggers++
			return
		}
		n.trigFIFO.Push(w)
		if hw := int64(n.trigFIFO.Len()); hw > n.stats.TrigFIFOHighWater {
			n.stats.TrigFIFOHighWater = hw
		}
	})
}

// RegisterTriggered registers a triggered operation (§3.1 step 1): the
// staged command op will launch once the entry's counter reaches
// threshold. Under relaxed synchronization the GPU may already have
// written the tag; if the placeholder's counter satisfies the threshold
// the operation launches immediately (§3.2).
func (n *NIC) RegisterTriggered(p *sim.Proc, tag uint64, threshold int64, op *Command) error {
	if threshold <= 0 {
		return fmt.Errorf("nic: threshold must be positive, got %d", threshold)
	}
	if op == nil {
		return fmt.Errorf("nic: nil triggered operation")
	}
	// Host-side registration cost: a command write to the NIC.
	p.Sleep(n.cfg.DoorbellLatency + n.cfg.CommandLatency)

	if e := n.findEntry(tag); e != nil {
		if e.hasOp && !e.fired {
			return fmt.Errorf("nic: tag %d: %w", tag, ErrTagBusy)
		}
		if e.fired {
			// Entry was consumed; treat as fresh registration reusing the
			// slot — a new instance as far as the trigger-once audit goes.
			n.au.TriggerRetired(int(n.id), e.regSeq)
			e.regSeq = n.nextRegSeq()
			e.counter, e.fired = 0, false
			e.overrides = DynamicWrite{}
		}
		e.op, e.threshold, e.hasOp = op, threshold, true
		if e.counter >= e.threshold {
			n.stats.ImmediateFires++
			n.fire(e)
		}
		return nil
	}
	if n.activeEntries() >= n.capTriggers() {
		n.stats.RegistrationRejects++
		return fmt.Errorf("nic: %w (%d active entries)", ErrTriggerListFull, n.capTriggers())
	}
	n.entries = append(n.entries, &triggerEntry{tag: tag, threshold: threshold, op: op, hasOp: true, regSeq: n.nextRegSeq()})
	n.noteTriggerWater()
	return nil
}

// TriggerListLen reports the number of allocated trigger entries.
func (n *NIC) TriggerListLen() int { return len(n.entries) }

// CancelTriggered removes every trigger-list entry whose tag lies in
// [lo, hi): staged operations that have not fired, relaxed-sync
// placeholders, and consumed (fired) entries alike. It is the model's
// PtlCTCancelTriggeredOps: an aborted workload must withdraw the
// operations it staged, or dead entries pin the associative list until
// nothing else can register (the list is small by design, §3.3). The
// caller pays one host command; the return value counts the removed
// entries that were still pending (had not fired).
func (n *NIC) CancelTriggered(p *sim.Proc, lo, hi uint64) int {
	p.Sleep(n.cfg.DoorbellLatency + n.cfg.CommandLatency)
	kept := n.entries[:0]
	canceled := 0
	for _, e := range n.entries {
		if e.tag >= lo && e.tag < hi {
			if !e.fired {
				canceled++
			}
			n.au.TriggerRetired(int(n.id), e.regSeq)
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(n.entries); i++ {
		n.entries[i] = nil
	}
	n.entries = kept
	n.stats.CanceledTriggers += int64(canceled)
	return canceled
}

func (n *NIC) activeEntries() int {
	c := 0
	for _, e := range n.entries {
		if !e.fired {
			c++
		}
	}
	return c
}

func (n *NIC) findEntry(tag uint64) *triggerEntry {
	for _, e := range n.entries {
		if e.tag == tag {
			return e
		}
	}
	return nil
}

// runTriggers is the trigger-list pipeline: pop tag writes from the FIFO,
// match, count, and fire (Figure 4 steps 3-4).
func (n *NIC) runTriggers(p *sim.Proc) {
	for {
		w := n.trigFIFO.Pop(p)
		ep := n.inc
		pos := len(n.entries)
		for i, e := range n.entries {
			if e.tag == w.Tag {
				pos = i
				break
			}
		}
		p.Sleep(n.lookup.MatchLatency(len(n.entries), pos))
		if n.fenced(ep) {
			// Crash landed between pop and match: the write dies with the
			// incarnation that buffered it.
			n.stats.FencedTriggers++
			continue
		}
		e := n.findEntry(w.Tag)
		if e == nil {
			// Relaxed synchronization: allocate a placeholder (§3.2),
			// subject to the shared list capacity and, when configured,
			// the dedicated placeholder budget.
			if n.activeEntries() >= n.capTriggers() {
				n.stats.DroppedTriggers++
				continue
			}
			if pc := n.capPlaceholders(); pc > 0 && n.activePlaceholders() >= pc {
				n.stats.DroppedTriggers++
				continue
			}
			e = &triggerEntry{tag: w.Tag, counter: 1, regSeq: n.nextRegSeq()}
			n.entries = append(n.entries, e)
			n.stats.PlaceholdersMade++
			n.noteTriggerWater()
			e.mergeOverrides(w)
			continue
		}
		e.counter++
		e.mergeOverrides(w)
		if e.hasOp && !e.fired && e.counter >= e.threshold {
			n.fire(e)
		}
	}
}

// mergeOverrides folds a dynamic write's fields into the entry
// (last-writer-wins per field, §3.4).
func (e *triggerEntry) mergeOverrides(w DynamicWrite) {
	if w.HasTarget {
		e.overrides.HasTarget, e.overrides.Target = true, w.Target
	}
	if w.HasSize {
		e.overrides.HasSize, e.overrides.Size = true, w.Size
	}
	if w.HasMatchBits {
		e.overrides.HasMatchBits, e.overrides.MatchBits = true, w.MatchBits
	}
}

// fire launches a satisfied trigger entry's operation, applying any
// GPU-provided dynamic overrides to the staged command.
func (n *NIC) fire(e *triggerEntry) {
	e.fired = true
	n.stats.TriggerFires++
	n.au.TriggerFired(n.eng.Now(), int(n.id), e.regSeq, int64(e.tag))
	op := e.op
	if e.overrides.Fields() > 0 {
		dyn := *op // the NIC patches a copy of the staged descriptor
		if e.overrides.HasTarget {
			dyn.Target = e.overrides.Target
		}
		if e.overrides.HasSize {
			dyn.Size = e.overrides.Size
		}
		if e.overrides.HasMatchBits {
			dyn.MatchBits = e.overrides.MatchBits
		}
		n.stats.DynamicFires++
		op = &dyn
	}
	n.enqueueCmd(op)
	if n.dbgDoubleFire && n.inc > 1 && !n.dblFired {
		// Seeded violation (DebugDoubleFire): the first fire of the
		// restarted incarnation launches its operation twice. The auditor's
		// trigger-once check must flag it.
		n.dblFired = true
		n.stats.TriggerFires++
		n.au.TriggerFired(n.eng.Now(), int(n.id), e.regSeq, int64(e.tag))
		n.enqueueCmd(op)
	}
}

// runCommands executes staged commands: parse, DMA the payload, inject
// into the fabric, and signal local completion.
func (n *NIC) runCommands(p *sim.Proc) {
	for {
		c := n.cmdQ.Pop(p)
		ep := n.inc
		n.admitPending()
		if d := n.inj.CommandStall(int(n.id)); d > 0 {
			p.Sleep(d)
		}
		parse := n.cfg.CommandLatency
		if slow := n.inj.Slow(); slow != nil {
			stretched, stall := slow.CommandSlow(n.eng.Now(), int(n.id), parse)
			if stretched > parse {
				n.stats.SlowCmdStretched++
			}
			if stall > 0 {
				n.stats.SlowCmdStalls++
				p.Sleep(stall)
			}
			parse = stretched
		}
		p.Sleep(parse)
		if n.fenced(ep) {
			// The node crashed while this command was being parsed: it is
			// abandoned, never reaching the fabric.
			n.stats.FencedCommands++
			continue
		}
		switch c.Kind {
		case OpPut:
			n.execPut(p, c, ep)
		case OpGet:
			n.execGet(p, c, ep)
		case OpAtomic, OpFetchAtomic:
			n.execAtomic(p, c, ep)
		default:
			panic(fmt.Sprintf("nic: unknown op kind %v", c.Kind))
		}
		n.stats.CommandsExecuted++
	}
}

// dmaTime prices one DMA transfer of size bytes, stretched by any armed
// fail-slow DMA window covering this node now.
func (n *NIC) dmaTime(size int64) sim.Time {
	d := n.cfg.DMAStartup + sim.BytesAtGbps(size, n.cfg.DMAGBps*8)
	if slow := n.inj.Slow(); slow != nil {
		if sd := slow.DMADilate(n.eng.Now(), int(n.id), d); sd > d {
			n.stats.SlowDMAStretched++
			d = sd
		}
	}
	return d
}

func (n *NIC) execPut(p *sim.Proc, c *Command, ep int64) {
	// DMA-read the send buffer from memory.
	p.Sleep(n.dmaTime(c.Size))
	if n.fenced(ep) {
		n.stats.FencedCommands++
		return
	}
	data := c.Data
	if f, ok := data.(Deferred); ok {
		data = f() // buffer contents are read at DMA time
	}
	meta := &wireMeta{kind: OpPut, matchBits: c.MatchBits}
	var summed bool
	data, summed = n.e2ePrepare(meta, data)
	if summed && n.cfg.E2EChecksumLatency > 0 {
		p.Sleep(n.cfg.E2EChecksumLatency)
		if n.fenced(ep) {
			n.stats.FencedCommands++
			return
		}
	}
	// Buffer corruption at rest: the DMA engine reads bits that flipped
	// after the (clean-buffer) checksum was computed, so the frame leaves
	// internally inconsistent and the destination's e2e verify catches it.
	if sdc := n.inj.SDC(); sdc != nil {
		if cp, ok := data.(Corruptible); ok && sdc.BufferCorrupt(n.eng.Now(), int(n.id)) {
			data = cp.CorruptCopy()
		}
	}
	meta.data = data
	n.send(&network.Message{
		Src:     n.id,
		Dst:     c.Target,
		Size:    c.Size,
		Kind:    "put",
		Payload: meta,
	})
	// Local completion: buffer is reusable once the DMA read finished.
	n.complete(c)
}

func (n *NIC) execGet(p *sim.Proc, c *Command, ep int64) {
	// A get sends a small request; the reply carries the data. The reply
	// is routed back to a NIC-internal region with a unique key, so
	// concurrent gets against the same remote match bits cannot collide.
	n.replySeq++
	replyMatch := 0x4752455400000000 | n.replySeq
	done := c
	n.ExposeRegion(&Region{
		MatchBits: replyMatch,
		UseOnce:   true,
		OnDelivery: func(d Delivery) {
			done.Data = d.Data
			n.complete(done)
		},
	})
	n.send(&network.Message{
		Src:  n.id,
		Dst:  c.Target,
		Size: 32, // request header only
		Kind: "get_req",
		Payload: &wireMeta{
			kind:       OpGet,
			matchBits:  c.MatchBits,
			replyMatch: replyMatch,
			reqSize:    c.Size,
		},
	})
}

func (n *NIC) complete(c *Command) {
	ep := n.inc
	n.eng.After(n.cfg.CompletionWriteLatency, func() {
		if n.fenced(ep) {
			// The completion write belonged to a dead incarnation; the
			// counters it would have bumped are gone with the session.
			n.stats.FencedCommands++
			return
		}
		if c.LocalCompletion != nil {
			c.LocalCompletion.Add(1)
		}
		if c.OnLocalComplete != nil {
			c.OnLocalComplete()
		}
	})
}

// deliver is the fabric handler: an inbound message has fully arrived.
// Before any payload handling it applies the crash fences: a down NIC
// receives nothing, frames from a dead incarnation of the sender are
// dropped (adopting newer incarnations resets per-peer reliability state),
// and frames addressed to a previous incarnation of this NIC are dropped —
// the stale pre-staged traffic of the node's former life. Frames with
// zero epochs (sent by non-NIC test harnesses) read as incarnation 1.
func (n *NIC) deliver(m *network.Message) {
	if n.down {
		n.stats.DownDrops++
		return
	}
	se, de := m.SrcEpoch, m.DstEpoch
	if se == 0 {
		se = 1
	}
	if de == 0 {
		de = 1
	}
	if view := n.peerEpochOf(m.Src); se > view {
		// The peer restarted: adopt its new incarnation and reset the
		// reliability channel pair so both directions start fresh.
		n.setPeerEpoch(m.Src, se)
		n.stats.EpochResets++
		if n.rel != nil {
			n.rel.resetPeer(m.Src)
		}
	} else if se < view {
		n.stats.StaleSrcDrops++
		return
	}
	if de != n.inc {
		if n.dbgStaleDeliver && !n.staleDelivered {
			if pl, ok := m.Payload.(*wireMeta); ok && !m.Corrupted && !m.SilentCorrupt {
				// Seeded violation (DebugStaleDeliver): dispatch one frame
				// addressed to this NIC's previous incarnation instead of
				// fencing it. The auditor's no-stale-delivery check must
				// flag it.
				n.staleDelivered = true
				n.dispatch(m, pl)
				return
			}
		}
		n.stats.StaleDstDrops++
		return
	}
	if _, ok := m.Payload.(*epochAnnounce); ok {
		return // the epoch adoption above is the whole message
	}
	switch pl := m.Payload.(type) {
	case *relAck:
		// ACK/NACK control frames are themselves unreliable; a corrupt
		// one is simply discarded (the data timer recovers).
		if n.rel != nil && !m.Corrupted {
			n.rel.onAck(m.Src, pl)
		}
		return
	case *relEnvelope:
		if n.rel == nil {
			panic(fmt.Sprintf("nic %d: reliable frame from %d but reliability is off", n.id, m.Src))
		}
		n.rel.onData(m, pl)
		return
	case *wireMeta:
		if m.Corrupted {
			// Checksum failure without a reliability layer: the frame is
			// dropped on the floor, exactly like a lossy physical link.
			n.stats.CorruptDropped++
			return
		}
		if m.SilentCorrupt {
			pl = e2eMaterialize(pl)
			m.SilentCorrupt = false
		}
		if n.e2eFails(pl) {
			// Bad payload sum on a best-effort datagram: no NACK channel,
			// so the frame is dropped like a link-corrupt one — but the
			// strike lands on the sender, because the link accepted it.
			n.noteE2EFail()
			n.addStrike(m.Src)
			return
		}
		n.dispatch(m, pl)
	default:
		panic(fmt.Sprintf("nic %d: foreign payload %T", n.id, m.Payload))
	}
}

// dispatch hands a verified inbound operation to the matching service path.
func (n *NIC) dispatch(m *network.Message, meta *wireMeta) {
	if n.au != nil {
		// No-stale-delivery audit: every frame crossing into protocol
		// handlers must be from the sender's live incarnation and addressed
		// to this one. Zero epochs (non-NIC test harnesses) read as 1.
		se, de := m.SrcEpoch, m.DstEpoch
		if se == 0 {
			se = 1
		}
		if de == 0 {
			de = 1
		}
		n.au.Dispatched(n.eng.Now(), int(n.id), int(m.Src), se, n.peerEpochOf(m.Src), de, n.inc)
	}
	if cp, ok := meta.data.(Corruptible); ok && cp.IsCorrupt() {
		// Simulator omniscience: a corrupt payload is crossing into the
		// application unflagged — either no e2e checksum was carried or a
		// retransmission made the frame self-consistent. Only a verified
		// collective can catch it now.
		n.stats.SDCUndetected++
	}
	switch m.Kind {
	case "put":
		n.deliverPut(m, meta)
	case "get_req":
		n.serveGet(m, meta)
	case "atomic":
		n.serveAtomic(m, meta)
	default:
		panic(fmt.Sprintf("nic %d: unknown message kind %q", n.id, m.Kind))
	}
}

// unmatched handles an inbound operation whose match bits found no exposed
// region. In a crash-free simulation that is a model bug and panics. After
// a restart it is expected: a surviving peer still running a workload from
// before the crash addresses regions that existed only in this NIC's
// previous life — those frames pass the epoch fence (the sender knows the
// new incarnation; only its *workload* is stale), and Portals semantics
// drop them with an event rather than faulting. Returns true when dropped.
func (n *NIC) unmatched(what string, mb uint64, src network.NodeID) bool {
	if n.inc > 1 {
		n.stats.UnmatchedDrops++
		return true
	}
	panic(fmt.Sprintf("nic %d: %s to unmatched match bits %#x from %d", n.id, what, mb, src))
}

func (n *NIC) deliverPut(m *network.Message, meta *wireMeta) {
	r, gated := n.matchRegion(meta.matchBits, m.Src)
	if gated {
		return
	}
	if r == nil {
		if n.unmatched("put", meta.matchBits, m.Src) {
			return
		}
	}
	// DMA-write into target memory, then raise target-side notification.
	dmaDone := n.dmaTime(m.Size)
	src, size, data := m.Src, m.Size, meta.data
	ep := n.inc
	n.eng.After(dmaDone, func() {
		if n.fenced(ep) {
			n.stats.FencedDeliveries++
			return
		}
		n.stats.DeliveredMessages++
		if r.Counter != nil {
			r.Counter.Add(1)
		}
		if r.OnDelivery != nil {
			r.OnDelivery(Delivery{Kind: OpPut, From: src, MatchBits: meta.matchBits, Size: size, Data: data, At: n.eng.Now()})
		}
	})
}

func (n *NIC) serveGet(m *network.Message, meta *wireMeta) {
	r, gated := n.matchRegion(meta.matchBits, m.Src)
	if gated {
		return
	}
	if r == nil {
		if n.unmatched("get", meta.matchBits, m.Src) {
			return
		}
	}
	var data any
	if r.ReadBack != nil {
		data = r.ReadBack(meta.reqSize)
	}
	// DMA-read the region, then send the reply.
	dma := n.dmaTime(meta.reqSize)
	src := m.Src
	ep := n.inc
	n.eng.After(dma, func() {
		if n.fenced(ep) {
			n.stats.FencedDeliveries++
			return
		}
		n.stats.DeliveredMessages++
		if r.Counter != nil {
			r.Counter.Add(1)
		}
		if r.OnDelivery != nil {
			r.OnDelivery(Delivery{Kind: OpGet, From: src, MatchBits: meta.matchBits, Size: meta.reqSize, Data: data, At: n.eng.Now()})
		}
		n.send(&network.Message{
			Src:  n.id,
			Dst:  src,
			Size: meta.reqSize,
			Kind: "put",
			Payload: &wireMeta{
				kind:      OpPut,
				matchBits: meta.replyMatch,
				data:      data,
			},
		})
	})
}

// execAtomic issues an OpAtomic/OpFetchAtomic: a small wire message
// carrying the operand. Fetch variants expose a use-once reply region
// exactly like gets.
func (n *NIC) execAtomic(p *sim.Proc, c *Command, ep int64) {
	p.Sleep(n.dmaTime(c.Size))
	if n.fenced(ep) {
		n.stats.FencedCommands++
		return
	}
	operand := c.Data
	if f, ok := operand.(Deferred); ok {
		operand = f()
	}
	meta := &wireMeta{
		kind:      c.Kind,
		matchBits: c.MatchBits,
		atomicOp:  c.Atomic,
		fetch:     c.Kind == OpFetchAtomic,
		reqSize:   c.Size,
	}
	var summed bool
	operand, summed = n.e2ePrepare(meta, operand)
	if summed && n.cfg.E2EChecksumLatency > 0 {
		p.Sleep(n.cfg.E2EChecksumLatency)
		if n.fenced(ep) {
			n.stats.FencedCommands++
			return
		}
	}
	if sdc := n.inj.SDC(); sdc != nil {
		if cp, ok := operand.(Corruptible); ok && sdc.BufferCorrupt(n.eng.Now(), int(n.id)) {
			operand = cp.CorruptCopy()
		}
	}
	meta.data = operand
	if meta.fetch {
		n.replySeq++
		meta.replyMatch = 0x4641455400000000 | n.replySeq
		done := c
		n.ExposeRegion(&Region{
			MatchBits: meta.replyMatch,
			UseOnce:   true,
			OnDelivery: func(d Delivery) {
				done.Data = d.Data
				n.complete(done)
			},
		})
	}
	n.send(&network.Message{
		Src: n.id, Dst: c.Target, Size: c.Size, Kind: "atomic", Payload: meta,
	})
	if !meta.fetch {
		// Plain atomics complete locally once the operand is on the wire.
		n.complete(c)
	}
}

// serveAtomic applies an inbound atomic to the matched region and, for
// fetch variants, replies with the prior value.
func (n *NIC) serveAtomic(m *network.Message, meta *wireMeta) {
	r, gated := n.matchRegion(meta.matchBits, m.Src)
	if gated {
		return
	}
	if r == nil {
		if n.unmatched("atomic", meta.matchBits, m.Src) {
			return
		}
	}
	if r.ApplyAtomic == nil {
		panic(fmt.Sprintf("nic %d: atomic to region %#x without ApplyAtomic", n.id, r.MatchBits))
	}
	dma := n.dmaTime(m.Size)
	src := m.Src
	ep := n.inc
	n.eng.After(dma, func() {
		if n.fenced(ep) {
			n.stats.FencedDeliveries++
			return
		}
		n.stats.DeliveredMessages++
		prior := r.ApplyAtomic(meta.atomicOp, meta.data)
		if r.Counter != nil {
			r.Counter.Add(1)
		}
		if r.OnDelivery != nil {
			r.OnDelivery(Delivery{Kind: meta.kind, From: src, MatchBits: meta.matchBits, Size: m.Size, Data: meta.data, At: n.eng.Now()})
		}
		if meta.fetch {
			n.send(&network.Message{
				Src: n.id, Dst: src, Size: meta.reqSize, Kind: "put",
				Payload: &wireMeta{kind: OpPut, matchBits: meta.replyMatch, data: prior},
			})
		}
	})
}

// ApplyAtomicInt64 is a ready-made ApplyAtomic implementation over an
// int64 cell.
func ApplyAtomicInt64(cell *int64) func(op AtomicOp, operand any) any {
	return func(op AtomicOp, operand any) any {
		prior := *cell
		v := operand.(int64)
		switch op {
		case AtomicSum:
			*cell += v
		case AtomicMin:
			if v < *cell {
				*cell = v
			}
		case AtomicMax:
			if v > *cell {
				*cell = v
			}
		case AtomicSwap:
			*cell = v
		default:
			panic(fmt.Sprintf("nic: unsupported atomic op %v", op))
		}
		return prior
	}
}

// ApplyAtomicFloat64 is a ready-made ApplyAtomic implementation over a
// float64 cell.
func ApplyAtomicFloat64(cell *float64) func(op AtomicOp, operand any) any {
	return func(op AtomicOp, operand any) any {
		prior := *cell
		v := operand.(float64)
		switch op {
		case AtomicSum:
			*cell += v
		case AtomicMin:
			if v < *cell {
				*cell = v
			}
		case AtomicMax:
			if v > *cell {
				*cell = v
			}
		case AtomicSwap:
			*cell = v
		default:
			panic(fmt.Sprintf("nic: unsupported atomic op %v", op))
		}
		return prior
	}
}
