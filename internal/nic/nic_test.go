package nic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/sim"
)

// rig wires two NICs over a default fabric.
type rig struct {
	eng  *sim.Engine
	fab  *network.Fabric
	nics []*NIC
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	cfg := config.Default()
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, n)
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		r.nics = append(r.nics, New(eng, cfg.NIC, network.NodeID(i), fab))
	}
	return r
}

func TestBasicPut(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	var got Delivery
	r.nics[1].ExposeRegion(&Region{
		MatchBits:  0x10,
		Counter:    recv,
		OnDelivery: func(d Delivery) { got = d },
	})
	done := sim.NewCounter(r.eng)
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommand(p, &Command{
			Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64,
			Data: "hello", LocalCompletion: done,
		})
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("recv counter = %d", recv.Value())
	}
	if got.Data != "hello" || got.Size != 64 || got.From != 0 {
		t.Fatalf("delivery = %+v", got)
	}
	if done.Value() != 1 {
		t.Fatal("local completion not signaled")
	}
	if got.At <= 0 {
		t.Fatal("delivery time not stamped")
	}
}

func TestPutToUnexposedRegionPanics(t *testing.T) {
	r := newRig(t, 2)
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x99, Size: 8})
	})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.eng.Run()
}

func TestGet(t *testing.T) {
	r := newRig(t, 2)
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x20,
		ReadBack:  func(size int64) any { return fmt.Sprintf("data[%d]", size) },
	})
	var fetched any
	done := sim.NewCounter(r.eng)
	r.eng.Go("host", func(p *sim.Proc) {
		c := &Command{Kind: OpGet, Target: 1, MatchBits: 0x20, Size: 128, LocalCompletion: done}
		r.nics[0].PostCommand(p, c)
		done.WaitGE(p, 1)
		fetched = c.Data
	})
	r.eng.Run()
	if fetched != "data[128]" {
		t.Fatalf("fetched = %v", fetched)
	}
}

func TestConcurrentGetsDoNotCollide(t *testing.T) {
	r := newRig(t, 2)
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x20,
		ReadBack:  func(size int64) any { return size },
	})
	done := sim.NewCounter(r.eng)
	c1 := &Command{Kind: OpGet, Target: 1, MatchBits: 0x20, Size: 100, LocalCompletion: done}
	c2 := &Command{Kind: OpGet, Target: 1, MatchBits: 0x20, Size: 200, LocalCompletion: done}
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommandAsync(c1)
		r.nics[0].PostCommandAsync(c2)
		done.WaitGE(p, 2)
	})
	r.eng.Run()
	if c1.Data != int64(100) || c2.Data != int64(200) {
		t.Fatalf("replies crossed: c1=%v c2=%v", c1.Data, c2.Data)
	}
}

// --- Trigger-list semantics (§3.1) ---

func TestTriggeredPutFiresAtThreshold(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x30, Counter: recv})
	var fireTime sim.Time
	r.eng.Go("host", func(p *sim.Proc) {
		err := r.nics[0].RegisterTriggered(p, 7, 3, &Command{
			Kind: OpPut, Target: 1, MatchBits: 0x30, Size: 64,
		})
		if err != nil {
			t.Error(err)
		}
	})
	r.eng.Go("gpu", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		for i := 0; i < 3; i++ {
			p.Sleep(100 * sim.Nanosecond)
			r.nics[0].TriggerWrite(7)
			if recv.Value() != 0 && i < 2 {
				t.Error("fired before threshold")
			}
		}
		fireTime = p.Now()
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("recv = %d, want exactly 1", recv.Value())
	}
	st := r.nics[0].Stats()
	if st.TriggerWrites != 3 || st.TriggerFires != 1 {
		t.Fatalf("stats = %+v", st)
	}
	_ = fireTime
}

func TestTriggerFiresExactlyOnceWithExtraWrites(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x30, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 7, 2, &Command{Kind: OpPut, Target: 1, MatchBits: 0x30, Size: 8}); err != nil {
			t.Error(err)
		}
	})
	r.eng.Go("gpu", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		for i := 0; i < 10; i++ {
			r.nics[0].TriggerWrite(7)
		}
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("recv = %d, want 1 (exactly-once firing)", recv.Value())
	}
}

func TestRelaxedSyncTriggerBeforeRegister(t *testing.T) {
	// §3.2: GPU writes tags before the CPU registers the operation. The
	// NIC allocates a placeholder; registration finds the satisfied
	// counter and fires immediately.
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x40, Counter: recv})
	r.eng.Go("gpu", func(p *sim.Proc) {
		r.nics[0].TriggerWrite(9)
		r.nics[0].TriggerWrite(9)
	})
	r.eng.Go("host", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond) // long after the triggers landed
		if err := r.nics[0].RegisterTriggered(p, 9, 2, &Command{Kind: OpPut, Target: 1, MatchBits: 0x40, Size: 16}); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("recv = %d", recv.Value())
	}
	st := r.nics[0].Stats()
	if st.PlaceholdersMade != 1 {
		t.Fatalf("placeholders = %d, want 1", st.PlaceholdersMade)
	}
	if st.ImmediateFires != 1 {
		t.Fatalf("immediate fires = %d, want 1", st.ImmediateFires)
	}
}

func TestRelaxedSyncPartialThenRegister(t *testing.T) {
	// Placeholder exists but counter below threshold at registration:
	// remaining writes must complete it.
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x41, Counter: recv})
	r.eng.Go("gpu1", func(p *sim.Proc) {
		r.nics[0].TriggerWrite(5) // 1 of 3 before registration
	})
	r.eng.Go("host", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		if err := r.nics[0].RegisterTriggered(p, 5, 3, &Command{Kind: OpPut, Target: 1, MatchBits: 0x41, Size: 16}); err != nil {
			t.Error(err)
		}
	})
	r.eng.Go("gpu2", func(p *sim.Proc) {
		p.Sleep(4 * sim.Microsecond)
		r.nics[0].TriggerWrite(5)
		r.nics[0].TriggerWrite(5)
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("recv = %d", recv.Value())
	}
	if r.nics[0].Stats().ImmediateFires != 0 {
		t.Fatal("should not have fired at registration")
	}
}

// Property: for every interleaving of register time vs trigger-write
// times, the operation fires exactly once (§3.2 race resolution).
func TestRelaxedSyncRaceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 2)
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0x50, Counter: recv})
		threshold := int64(rng.Intn(5) + 1)
		writes := int(threshold) + rng.Intn(4) // >= threshold writes total
		regAt := sim.Time(rng.Intn(3000)) * sim.Nanosecond
		r.eng.Go("host", func(p *sim.Proc) {
			p.Sleep(regAt)
			if err := r.nics[0].RegisterTriggered(p, 1, threshold, &Command{Kind: OpPut, Target: 1, MatchBits: 0x50, Size: 8}); err != nil {
				t.Error(err)
			}
		})
		r.eng.Go("gpu", func(p *sim.Proc) {
			for i := 0; i < writes; i++ {
				p.Sleep(sim.Time(rng.Intn(1000)) * sim.Nanosecond)
				r.nics[0].TriggerWrite(1)
			}
		})
		r.eng.Run()
		return recv.Value() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentTags(t *testing.T) {
	// Work-item-level networking uses one tag per message (§4.2.1);
	// entries must count independently.
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	for mb := uint64(0x60); mb < 0x64; mb++ {
		r.nics[1].ExposeRegion(&Region{MatchBits: mb, Counter: recv})
	}
	r.eng.Go("host", func(p *sim.Proc) {
		for i := uint64(0); i < 4; i++ {
			if err := r.nics[0].RegisterTriggered(p, 100+i, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x60 + i, Size: 8}); err != nil {
				t.Error(err)
			}
		}
	})
	r.eng.Go("gpu", func(p *sim.Proc) {
		p.Sleep(3 * sim.Microsecond)
		// Fire tags 100 and 102 only.
		r.nics[0].TriggerWrite(100)
		r.nics[0].TriggerWrite(102)
	})
	r.eng.Run()
	if recv.Value() != 2 {
		t.Fatalf("recv = %d, want 2", recv.Value())
	}
}

func TestRegisterTriggeredValidation(t *testing.T) {
	r := newRig(t, 2)
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 1, 0, &Command{}); err == nil {
			t.Error("zero threshold accepted")
		}
		if err := r.nics[0].RegisterTriggered(p, 1, 1, nil); err == nil {
			t.Error("nil op accepted")
		}
		if err := r.nics[0].RegisterTriggered(p, 1, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8}); err != nil {
			t.Errorf("valid registration rejected: %v", err)
		}
		if err := r.nics[0].RegisterTriggered(p, 1, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8}); err == nil {
			t.Error("duplicate pending tag accepted")
		}
	})
	r.nics[1].ExposeRegion(&Region{MatchBits: 1})
	r.eng.Run()
}

func TestTriggerListCapacity(t *testing.T) {
	r := newRig(t, 2)
	max := config.Default().NIC.MaxTriggerEntries
	r.eng.Go("host", func(p *sim.Proc) {
		for i := 0; i < max; i++ {
			if err := r.nics[0].RegisterTriggered(p, uint64(i), 10, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8}); err != nil {
				t.Fatalf("entry %d rejected: %v", i, err)
			}
		}
		if err := r.nics[0].RegisterTriggered(p, 999, 10, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8}); err == nil {
			t.Error("over-capacity registration accepted")
		}
	})
	r.eng.Run()
	if r.nics[0].TriggerListLen() != max {
		t.Fatalf("list len = %d", r.nics[0].TriggerListLen())
	}
}

func TestTagSlotReuseAfterFire(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x70, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 3, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x70, Size: 8}); err != nil {
			t.Error(err)
		}
		p.Sleep(2 * sim.Microsecond)
		r.nics[0].TriggerWrite(3)
		recv.WaitGE(p, 1)
		// Re-register the same tag for a second round.
		if err := r.nics[0].RegisterTriggered(p, 3, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x70, Size: 8}); err != nil {
			t.Errorf("reuse rejected: %v", err)
		}
		r.nics[0].TriggerWrite(3)
		recv.WaitGE(p, 2)
	})
	r.eng.Run()
	if recv.Value() != 2 {
		t.Fatalf("recv = %d", recv.Value())
	}
}

func TestBoundedTriggerFIFODrops(t *testing.T) {
	cfg := config.Default()
	cfg.NIC.TriggerFIFODepth = 2
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, 2)
	n0 := New(eng, cfg.NIC, 0, fab)
	New(eng, cfg.NIC, 1, fab)
	eng.Go("gpu", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			n0.TriggerWrite(1) // no sleep: floods the FIFO
		}
	})
	eng.RunUntil(1 * sim.Millisecond)
	if n0.Stats().DroppedTriggers == 0 {
		t.Fatal("bounded FIFO should have dropped under flood")
	}
}

func TestLookupModels(t *testing.T) {
	a := AssociativeLookup{Latency: 10}
	if a.MatchLatency(16, 15) != 10 || a.Name() != "associative" {
		t.Error("associative lookup wrong")
	}
	h := HashLookup{Latency: 15}
	if h.MatchLatency(1000, 500) != 15 || h.Name() != "hash" {
		t.Error("hash lookup wrong")
	}
	l := LinkedListLookup{PerEntry: 5}
	if l.MatchLatency(10, 0) != 5 || l.MatchLatency(10, 9) != 50 || l.Name() != "linked-list" {
		t.Error("linked-list lookup wrong")
	}
}

func TestLinkedListLookupSlowsTriggers(t *testing.T) {
	run := func(model LookupModel) sim.Time {
		r := newRig(t, 2)
		r.nics[0].SetLookupModel(model)
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0x80, Counter: recv})
		r.eng.Go("host", func(p *sim.Proc) {
			// Fill the list so position matters; target tag is last.
			for i := 0; i < 15; i++ {
				if err := r.nics[0].RegisterTriggered(p, uint64(i), 1000, &Command{Kind: OpPut, Target: 1, MatchBits: 0x80, Size: 8}); err != nil {
					t.Error(err)
				}
			}
			if err := r.nics[0].RegisterTriggered(p, 99, 64, &Command{Kind: OpPut, Target: 1, MatchBits: 0x80, Size: 8}); err != nil {
				t.Error(err)
			}
		})
		r.eng.Go("gpu", func(p *sim.Proc) {
			p.Sleep(20 * sim.Microsecond)
			for i := 0; i < 64; i++ {
				r.nics[0].TriggerWrite(99)
			}
		})
		r.eng.Run()
		if recv.Value() != 1 {
			t.Fatalf("recv = %d", recv.Value())
		}
		return r.eng.Now()
	}
	fast := run(AssociativeLookup{Latency: 10 * sim.Nanosecond})
	slow := run(LinkedListLookup{PerEntry: 10 * sim.Nanosecond})
	if slow <= fast {
		t.Fatalf("linked list (%v) should be slower than associative (%v) with 1000s of trigger writes", slow, fast)
	}
}

func TestIOBusLatencyDelaysTrigger(t *testing.T) {
	delay := func(bus sim.Time) sim.Time {
		r := newRig(t, 2)
		r.nics[0].SetIOBusLatency(bus)
		recv := sim.NewCounter(r.eng)
		var at sim.Time
		r.nics[1].ExposeRegion(&Region{MatchBits: 1, Counter: recv, OnDelivery: func(d Delivery) { at = d.At }})
		r.eng.Go("host", func(p *sim.Proc) {
			if err := r.nics[0].RegisterTriggered(p, 1, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8}); err != nil {
				t.Error(err)
			}
			r.nics[0].TriggerWrite(1)
		})
		r.eng.Run()
		return at
	}
	if d := delay(1*sim.Microsecond) - delay(0); d < 1*sim.Microsecond {
		t.Fatalf("IO bus hop added only %v", d)
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := newRig(t, 2)
	r.nics[1].ExposeRegion(&Region{MatchBits: 1})
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 1, Size: 8})
	})
	r.eng.Run()
	if st := r.nics[0].Stats(); st.CommandsExecuted != 1 {
		t.Fatalf("CommandsExecuted = %d", st.CommandsExecuted)
	}
	if st := r.nics[1].Stats(); st.DeliveredMessages != 1 {
		t.Fatalf("DeliveredMessages = %d", st.DeliveredMessages)
	}
	if r.nics[0].ID() != 0 || r.nics[1].ID() != 1 {
		t.Error("IDs wrong")
	}
}

func TestOpKindString(t *testing.T) {
	if OpPut.String() != "put" || OpGet.String() != "get" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Error("unknown OpKind string wrong")
	}
}
