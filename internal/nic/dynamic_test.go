package nic

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Tests for the §3.4 dynamic-communication extension: trigger writes that
// carry GPU-computed override fields.

func TestDynamicWriteFields(t *testing.T) {
	if (DynamicWrite{}).Fields() != 0 {
		t.Error("empty write has fields")
	}
	w := DynamicWrite{HasTarget: true, HasSize: true, HasMatchBits: true}
	if w.Fields() != 3 {
		t.Errorf("Fields = %d", w.Fields())
	}
}

func TestDynamicTargetOverride(t *testing.T) {
	// Host stages a put to node 1; the GPU redirects it to node 2.
	r := newRig(t, 3)
	recv1 := sim.NewCounter(r.eng)
	recv2 := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x5, Counter: recv1})
	r.nics[2].ExposeRegion(&Region{MatchBits: 0x5, Counter: recv2})
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 1, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x5, Size: 64}); err != nil {
			t.Error(err)
		}
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 1, HasTarget: true, Target: 2})
	})
	r.eng.Run()
	if recv1.Value() != 0 || recv2.Value() != 1 {
		t.Fatalf("deliveries = node1:%d node2:%d, want 0/1", recv1.Value(), recv2.Value())
	}
	if r.nics[0].Stats().DynamicFires != 1 {
		t.Fatalf("DynamicFires = %d", r.nics[0].Stats().DynamicFires)
	}
}

func TestDynamicSizeAndMatchBitsOverride(t *testing.T) {
	r := newRig(t, 2)
	var got Delivery
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x77, Counter: recv,
		OnDelivery: func(d Delivery) { got = d }})
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x5}) // the staged address
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 1, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x5, Size: 4096}); err != nil {
			t.Error(err)
		}
		r.nics[0].TriggerWriteDynamic(DynamicWrite{
			Tag: 1, HasSize: true, Size: 128, HasMatchBits: true, MatchBits: 0x77,
		})
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatal("override region never hit")
	}
	if got.Size != 128 {
		t.Fatalf("size = %d, want overridden 128", got.Size)
	}
}

func TestDynamicLastWriterWinsPerField(t *testing.T) {
	// Threshold 3: three writes, two of which carry different targets —
	// the last target written wins; the size from an earlier write stays.
	r := newRig(t, 4)
	recvs := make([]*sim.Counter, 4)
	var size int64
	for i := 1; i < 4; i++ {
		i := i
		recvs[i] = sim.NewCounter(r.eng)
		r.nics[i].ExposeRegion(&Region{MatchBits: 0x5, Counter: recvs[i],
			OnDelivery: func(d Delivery) { size = d.Size }})
	}
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 1, 3, &Command{Kind: OpPut, Target: 1, MatchBits: 0x5, Size: 4096}); err != nil {
			t.Error(err)
		}
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 1, HasSize: true, Size: 256})
		p.Sleep(sim.Microsecond)
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 1, HasTarget: true, Target: 2})
		p.Sleep(sim.Microsecond)
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 1, HasTarget: true, Target: 3})
	})
	r.eng.Run()
	if recvs[2].Value() != 0 || recvs[3].Value() != 1 {
		t.Fatalf("deliveries = %d/%d, want last-writer target 3", recvs[2].Value(), recvs[3].Value())
	}
	if size != 256 {
		t.Fatalf("size = %d, want 256 from the first write", size)
	}
}

func TestDynamicOverridesDoNotMutateStagedCommand(t *testing.T) {
	// The staged descriptor is patched on a copy; re-registering the same
	// command must behave as originally staged.
	r := newRig(t, 3)
	recv1 := sim.NewCounter(r.eng)
	recv2 := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x5, Counter: recv1})
	r.nics[2].ExposeRegion(&Region{MatchBits: 0x5, Counter: recv2})
	cmd := &Command{Kind: OpPut, Target: 1, MatchBits: 0x5, Size: 64}
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 1, 1, cmd); err != nil {
			t.Error(err)
		}
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 1, HasTarget: true, Target: 2})
		recv2.WaitGE(p, 1)
		if cmd.Target != 1 {
			t.Errorf("staged command mutated: target = %d", cmd.Target)
		}
		// Second round, same tag, no overrides: goes to the staged target.
		if err := r.nics[0].RegisterTriggered(p, 1, 1, cmd); err != nil {
			t.Error(err)
		}
		r.nics[0].TriggerWrite(1)
		recv1.WaitGE(p, 1)
	})
	r.eng.Run()
	if recv1.Value() != 1 || recv2.Value() != 1 {
		t.Fatalf("deliveries = %d/%d", recv1.Value(), recv2.Value())
	}
}

func TestDynamicRelaxedSyncPlaceholderKeepsOverrides(t *testing.T) {
	// Overrides written before registration (relaxed sync) must survive in
	// the placeholder and apply at the immediate fire.
	r := newRig(t, 3)
	recv2 := sim.NewCounter(r.eng)
	r.nics[2].ExposeRegion(&Region{MatchBits: 0x5, Counter: recv2})
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x5})
	r.eng.Go("gpu", func(p *sim.Proc) {
		r.nics[0].TriggerWriteDynamic(DynamicWrite{Tag: 9, HasTarget: true, Target: 2})
	})
	r.eng.Go("host", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		if err := r.nics[0].RegisterTriggered(p, 9, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x5, Size: 8}); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if recv2.Value() != 1 {
		t.Fatalf("placeholder lost the override: deliveries = %d", recv2.Value())
	}
}

// --- Relaxed-sync races under injected trigger-write faults ---

// withTriggerFaults arms a fault injector on node 0's MMIO trigger path.
func withTriggerFaults(r *rig, cfg config.FaultConfig) *fault.Injector {
	inj := fault.NewInjector(cfg)
	r.nics[0].SetInjector(inj)
	return inj
}

// Injected MMIO delay reorders trigger writes relative to registration; the
// §3.2 race resolution (placeholder or immediate fire) must still deliver
// exactly once.
func TestRelaxedSyncRaceUnderTriggerDelay(t *testing.T) {
	for _, regAt := range []sim.Time{0, 2 * sim.Microsecond, 20 * sim.Microsecond} {
		r := newRig(t, 2)
		withTriggerFaults(r, config.FaultConfig{Seed: 4, TrigDelayJitter: 10 * sim.Microsecond})
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0x90, Counter: recv})
		r.eng.Go("host", func(p *sim.Proc) {
			p.Sleep(regAt)
			if err := r.nics[0].RegisterTriggered(p, 7, 3, &Command{Kind: OpPut, Target: 1, MatchBits: 0x90, Size: 8}); err != nil {
				t.Error(err)
			}
		})
		r.eng.Go("gpu", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(500 * sim.Nanosecond)
				r.nics[0].TriggerWrite(7)
			}
		})
		r.eng.Run()
		if recv.Value() != 1 {
			t.Fatalf("regAt=%v: recv = %d, want exactly 1", regAt, recv.Value())
		}
	}
}

// A lost trigger write never reaches the FIFO: the entry must not fire on
// fewer surviving writes than its threshold, and the loss is counted.
func TestTriggerWriteLossStallsEntry(t *testing.T) {
	r := newRig(t, 2)
	withTriggerFaults(r, config.FaultConfig{Seed: 1, TrigDropProb: 1.0})
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x91, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 3, 2, &Command{Kind: OpPut, Target: 1, MatchBits: 0x91, Size: 8}); err != nil {
			t.Error(err)
		}
	})
	r.eng.Go("gpu", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		r.nics[0].TriggerWrite(3)
		r.nics[0].TriggerWrite(3)
	})
	r.eng.Run()
	if recv.Value() != 0 {
		t.Fatalf("fired on lost writes: recv = %d", recv.Value())
	}
	st := r.nics[0].Stats()
	if st.LostTriggerWrites != 2 {
		t.Fatalf("LostTriggerWrites = %d, want 2", st.LostTriggerWrites)
	}
	if st.TriggerFires != 0 {
		t.Fatalf("TriggerFires = %d", st.TriggerFires)
	}
}

// The GPU's recovery for a lossy MMIO path is over-writing the tag: as long
// as threshold writes survive, the entry fires exactly once.
func TestTriggerWriteLossRecoveredByExtraWrites(t *testing.T) {
	r := newRig(t, 2)
	withTriggerFaults(r, config.FaultConfig{Seed: 6, TrigDropProb: 0.5})
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x92, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		if err := r.nics[0].RegisterTriggered(p, 5, 4, &Command{Kind: OpPut, Target: 1, MatchBits: 0x92, Size: 8}); err != nil {
			t.Error(err)
		}
	})
	const writes = 40 // 50% loss: overwhelming odds that >= 4 survive
	r.eng.Go("gpu", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			p.Sleep(100 * sim.Nanosecond)
			r.nics[0].TriggerWrite(5)
		}
	})
	r.eng.Run()
	st := r.nics[0].Stats()
	survived := int64(writes) - st.LostTriggerWrites
	if survived < 4 {
		t.Fatalf("seed 6 lost too many writes (%d survived); pick another seed", survived)
	}
	if recv.Value() != 1 {
		t.Fatalf("recv = %d, want exactly 1 (%d of %d writes survived)", recv.Value(), survived, writes)
	}
}
