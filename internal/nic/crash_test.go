package nic

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
)

// Crash must be a total cold stop: the trigger list (staged ops and
// placeholders), exposed regions, and queued commands all vanish, the NIC
// reports Down, and inbound frames are absorbed as DownDrops.
func TestCrashClearsStateAndAbsorbsInbound(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
	r.eng.Go("host1", func(p *sim.Proc) {
		if err := r.nics[1].RegisterTriggered(p, 7, 100, &Command{Kind: OpPut, Target: 0, MatchBits: 0x10, Size: 8}); err != nil {
			t.Error(err)
		}
		r.nics[1].TriggerWrite(99) // placeholder
	})
	r.eng.Go("host0", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		r.nics[1].Crash()
		r.nics[1].Crash() // idempotent
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
	})
	r.eng.Run()
	n1 := r.nics[1]
	if !n1.Down() {
		t.Fatal("NIC not down after Crash")
	}
	if n1.DownSince() != 5*sim.Microsecond {
		t.Fatalf("DownSince = %v", n1.DownSince())
	}
	if n1.TriggerListLen() != 0 {
		t.Fatalf("trigger list survived the crash: %d entries", n1.TriggerListLen())
	}
	st := n1.Stats()
	if st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1 (idempotent)", st.Crashes)
	}
	if st.DownDrops == 0 {
		t.Fatal("inbound put to the down NIC was not absorbed")
	}
	if recv.Value() != 0 {
		t.Fatal("delivery raised on a crashed NIC")
	}
}

// The full epoch protocol across a restart: frames addressed to the old
// incarnation are fenced, an epoch announce makes the peer adopt the new
// incarnation, a stale workload's put to a vanished region is dropped with
// an event (Portals semantics), and a re-exposed region delivers normally.
func TestRestartEpochProtocolEndToEnd(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
	r.eng.Go("driver", func(p *sim.Proc) {
		r.nics[1].Crash()
		p.Sleep(1 * sim.Microsecond)
		r.nics[1].Restart()
		if inc := r.nics[1].Incarnation(); inc != 2 {
			t.Errorf("incarnation after restart = %d, want 2", inc)
		}
		// Peer still believes incarnation 1: the frame is fenced at the
		// restarted NIC (DstEpoch mismatch), not delivered.
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
		p.Sleep(10 * sim.Microsecond)
		if st := r.nics[1].Stats(); st.StaleDstDrops == 0 {
			t.Errorf("old-epoch frame not fenced: %+v", st)
		}
		// The announce teaches the peer the new incarnation.
		r.nics[1].AnnounceEpoch(0)
		p.Sleep(10 * sim.Microsecond)
		if st := r.nics[0].Stats(); st.EpochResets != 1 {
			t.Errorf("peer EpochResets = %d, want 1", st.EpochResets)
		}
		// Correctly-addressed frame, but the region died with the old life:
		// dropped with an event, not a panic.
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
		p.Sleep(10 * sim.Microsecond)
		if st := r.nics[1].Stats(); st.UnmatchedDrops == 0 {
			t.Errorf("stale-workload put not dropped as unmatched: %+v", st)
		}
		if recv.Value() != 0 {
			t.Error("delivery raised for a region from the previous incarnation")
		}
		// The restarted node re-exposes and traffic flows again.
		r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
	})
	r.eng.Run()
	if recv.Value() != 1 {
		t.Fatalf("post-rejoin delivery count = %d, want 1", recv.Value())
	}
}

// Frames from a dead incarnation of the peer (SrcEpoch behind the adopted
// view) are dropped before any dispatch.
func TestStaleSrcEpochFrameIsDropped(t *testing.T) {
	r := newRig(t, 2)
	r.eng.Go("driver", func(p *sim.Proc) {
		// Adopt incarnation 3 for peer 1 via a synthetic announce.
		r.nics[0].deliver(&network.Message{
			Src: 1, Dst: 0, Size: epochAnnounceBytes, Kind: "epoch",
			SrcEpoch: 3, DstEpoch: 1, Payload: &epochAnnounce{},
		})
		if got := r.nics[0].peerEpochOf(1); got != 3 {
			t.Errorf("adopted epoch = %d, want 3", got)
		}
		// A retransmit staged by incarnation 2 arrives late: fenced.
		r.nics[0].deliver(&network.Message{
			Src: 1, Dst: 0, Size: 64, Kind: "put",
			SrcEpoch: 2, DstEpoch: 1,
			Payload: &wireMeta{kind: OpPut, matchBits: 0xDEAD},
		})
	})
	r.eng.Run()
	st := r.nics[0].Stats()
	if st.StaleSrcDrops != 1 {
		t.Fatalf("StaleSrcDrops = %d, want 1", st.StaleSrcDrops)
	}
	if st.EpochResets != 1 {
		t.Fatalf("EpochResets = %d, want 1", st.EpochResets)
	}
}

// CancelTriggered sweeps exactly the tag range [lo, hi): staged ops,
// relaxed-sync placeholders, and fired entries inside it go; entries
// outside survive; the canceled count excludes already-fired entries.
func TestCancelTriggeredSweepsTagRange(t *testing.T) {
	r := newRig(t, 2)
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
	n0 := r.nics[0]
	r.eng.Go("host", func(p *sim.Proc) {
		for _, tag := range []uint64{10, 11, 20} {
			if err := n0.RegisterTriggered(p, tag, 100, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 8}); err != nil {
				t.Error(err)
			}
		}
		if err := n0.RegisterTriggered(p, 12, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 8}); err != nil {
			t.Error(err)
		}
		n0.TriggerWrite(12) // fires: a consumed entry inside the range
		n0.TriggerWrite(99) // placeholder outside the range
		p.Sleep(5 * sim.Microsecond)
		if got := n0.CancelTriggered(p, 10, 13); got != 2 {
			t.Errorf("canceled %d pending entries, want 2 (tags 10, 11)", got)
		}
		// Tag 10 can be registered fresh after the sweep.
		if err := n0.RegisterTriggered(p, 10, 1, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 8}); err != nil {
			t.Error(err)
		}
		n0.TriggerWrite(10)
	})
	r.eng.Run()
	// Survivors: tag 20 (staged), tag 99 (placeholder), re-registered 10.
	if got := n0.TriggerListLen(); got != 3 {
		t.Fatalf("trigger list len = %d, want 3", got)
	}
	st := n0.Stats()
	if st.CanceledTriggers != 2 {
		t.Fatalf("CanceledTriggers = %d, want 2", st.CanceledTriggers)
	}
	if recv.Value() != 2 {
		t.Fatalf("deliveries = %d, want 2 (tag 12 pre-sweep, tag 10 post-sweep)", recv.Value())
	}
}

// MarkPeerCrashed declares the peer dead immediately with the crash reason
// and fires OnPeerDead, without burning the retry budget.
func TestMarkPeerCrashedDeclaresWithReason(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{})
	var deadPeer network.NodeID = 255
	r.nics[0].OnPeerDead(func(peer network.NodeID) { deadPeer = peer })
	r.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		r.nics[0].MarkPeerCrashed(1)
		r.nics[0].MarkPeerCrashed(1) // idempotent
	})
	r.eng.Run()
	if deadPeer != 1 {
		t.Fatalf("OnPeerDead fired for %d, want 1", deadPeer)
	}
	info, ok := r.nics[0].PeerDeadDetail(1)
	if !ok {
		t.Fatal("no peer-dead record")
	}
	if info.Reason != PeerDeadCrash {
		t.Fatalf("reason = %v, want PeerDeadCrash", info.Reason)
	}
	if info.Reason.String() != "peer crashed" {
		t.Fatalf("reason string = %q", info.Reason.String())
	}
	if info.At != 1*sim.Microsecond {
		t.Fatalf("declared at %v, want 1µs", info.At)
	}
	if st := r.nics[0].Stats(); st.PeersDeclaredCrashed != 1 {
		t.Fatalf("PeersDeclaredCrashed = %d, want 1 (idempotent)", st.PeersDeclaredCrashed)
	}
}

// The seeded stale-delivery bug (DebugStaleDeliver): exactly one frame
// addressed to this NIC's previous incarnation is dispatched instead of
// fenced, and the always-on auditor must flag it as a no-stale-delivery
// violation. The honest twin of the same timeline fences the frame
// (StaleDstDrops) and the audit stays clean — proving the check keys on
// the protocol break, not on the crash schedule.
func TestAuditorCatchesSeededStaleDelivery(t *testing.T) {
	run := func(debug bool) (*audit.Auditor, Stats, int64) {
		cfg := config.Default()
		eng := sim.NewEngine()
		fab := network.NewFabric(eng, cfg.Network, 2)
		inj := fault.NewInjector(config.FaultConfig{DebugStaleDeliver: debug})
		fab.SetInjector(inj)
		au := audit.New(2)
		r := &rig{eng: eng, fab: fab}
		for i := 0; i < 2; i++ {
			nc := New(eng, cfg.NIC, network.NodeID(i), fab)
			nc.SetInjector(inj)
			nc.SetAuditor(au)
			r.nics = append(r.nics, nc)
		}
		recv := sim.NewCounter(eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
		eng.Go("driver", func(p *sim.Proc) {
			// Restart node 1 without telling node 0: the next put is
			// stamped with the dead incarnation's epoch.
			r.nics[1].Crash()
			p.Sleep(sim.Microsecond)
			r.nics[1].Restart()
			r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
			r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
		})
		eng.Run()
		au.Finish(eng.Now(), true)
		return au, r.nics[1].Stats(), recv.Value()
	}

	au, st, recv := run(true)
	vs, _ := au.Violations()
	if len(vs) == 0 {
		t.Fatal("seeded stale delivery produced no violation")
	}
	for _, v := range vs {
		if v.Check != audit.CheckStaleDelivery {
			t.Fatalf("violation check = %q, want %q (%v)", v.Check, audit.CheckStaleDelivery, v)
		}
	}
	if recv == 0 {
		t.Fatal("debug frame was not actually delivered to the wrong incarnation")
	}
	if st.StaleDstDrops != 0 {
		t.Fatalf("debug run also fenced the frame: StaleDstDrops = %d", st.StaleDstDrops)
	}

	auHonest, stHonest, recvHonest := run(false)
	if !auHonest.Clean() {
		vs, _ := auHonest.Violations()
		t.Fatalf("honest run violated: %v", vs)
	}
	if stHonest.StaleDstDrops == 0 {
		t.Fatal("honest run never fenced the stale frame (vacuous twin)")
	}
	if recvHonest != 0 {
		t.Fatal("honest run delivered a stale frame")
	}
}
