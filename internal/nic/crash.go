// Crash-stop/restart support and incarnation-epoch fencing.
//
// A crashed node loses all NIC state: the trigger list (including
// relaxed-sync placeholders), exposed regions, the command queue, and the
// reliable-delivery layer. A restart is cold: the NIC comes back empty
// under a new incarnation epoch. Every outbound frame is stamped with the
// sender's incarnation (SrcEpoch) and the sender's view of the receiver's
// incarnation (DstEpoch); the receiver fences frames from a dead
// incarnation of the peer and frames addressed to a previous life of its
// own, so retransmits, triggered fires, and placeholders staged before a
// crash can never corrupt the restarted node. All fencing is integer
// comparison on the single-threaded engine — with no crash scheduled every
// epoch stays at 1 and the event trace is bit-for-bit the crash-free one.
package nic

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// epochAnnounce is the control frame a restarted NIC sends to every peer:
// its SrcEpoch advertises the new incarnation so peers adopt it (resetting
// their per-peer reliability state) without waiting for data traffic.
type epochAnnounce struct{}

// epochAnnounceBytes is the modeled wire size of an epoch announcement.
const epochAnnounceBytes = 16

// PeerDeadReason records why the reliability layer gave up on a peer.
type PeerDeadReason int

const (
	// PeerDeadRetries means the retry budget was exhausted — loss or
	// congestion, with no evidence the peer actually died.
	PeerDeadRetries PeerDeadReason = iota
	// PeerDeadCrash means an explicit crash report (link-down propagated by
	// the cluster when the peer's node crashed).
	PeerDeadCrash
	// PeerDeadPartition means the membership layer diagnosed a network
	// partition: the peer is alive but unreachable. Unlike a crash the
	// verdict is revocable — HealPeer clears it when the cut heals.
	PeerDeadPartition
	// PeerDeadCorrupt means the membership layer quarantined the peer for
	// producing corrupt data (accumulated SDC strikes): the peer is alive
	// and reachable, but its output cannot be trusted. The verdict is
	// permanent — unlike a partition, a flaky core does not heal.
	PeerDeadCorrupt
)

func (r PeerDeadReason) String() string {
	switch r {
	case PeerDeadRetries:
		return "retry budget exhausted"
	case PeerDeadCrash:
		return "peer crashed"
	case PeerDeadPartition:
		return "peer partitioned"
	case PeerDeadCorrupt:
		return "peer quarantined (corrupt data)"
	default:
		return fmt.Sprintf("PeerDeadReason(%d)", int(r))
	}
}

// PeerDeadInfo records when and why a peer was declared dead.
type PeerDeadInfo struct {
	At     sim.Time
	Reason PeerDeadReason
}

// PeerDeadDetail returns the recorded declaration details for a dead peer.
// ok is false when the peer was never declared dead (or reliability is off).
func (n *NIC) PeerDeadDetail(peer network.NodeID) (PeerDeadInfo, bool) {
	if n.rel == nil {
		return PeerDeadInfo{}, false
	}
	ch := n.rel.chans[peer]
	if ch == nil || !ch.dead {
		return PeerDeadInfo{}, false
	}
	return ch.deadInfo, true
}

// Down reports whether the NIC is crashed and not yet restarted.
func (n *NIC) Down() bool { return n.down }

// Incarnation returns the NIC's current incarnation epoch (1 until the
// first restart).
func (n *NIC) Incarnation() int64 { return n.inc }

// DownSince returns the time of the NIC's crash; meaningful only while
// Down() is true.
func (n *NIC) DownSince() sim.Time { return n.downAt }

// emit stamps the incarnation epochs onto an outbound frame and injects it
// into the fabric. Every NIC-originated fabric send goes through here.
func (n *NIC) emit(m *network.Message) {
	m.SrcEpoch = n.inc
	m.DstEpoch = n.peerEpochOf(m.Dst)
	n.fabric.Send(m)
}

// peerEpochOf returns this NIC's view of a peer's incarnation (1 until an
// epoch adoption says otherwise).
func (n *NIC) peerEpochOf(id network.NodeID) int64 {
	if int(id) < len(n.peerEpoch) && n.peerEpoch[id] != 0 {
		return n.peerEpoch[id]
	}
	return 1
}

func (n *NIC) setPeerEpoch(id network.NodeID, e int64) {
	old := n.peerEpochOf(id)
	for int(id) >= len(n.peerEpoch) {
		n.peerEpoch = append(n.peerEpoch, 0)
	}
	n.peerEpoch[id] = e
	n.au.PeerEpochSet(n.eng.Now(), int(n.id), int(id), old, e)
}

// fenced reports whether work captured under incarnation ep must be
// abandoned: the NIC crashed (down) or restarted (new incarnation) since
// the work was staged.
func (n *NIC) fenced(ep int64) bool { return n.down || n.inc != ep }

// Crash models a node crash-stop at the current instant: the NIC goes down
// and loses the trigger list, relaxed-sync placeholders, exposed regions,
// queued commands, buffered trigger writes, and all reliable-delivery
// state. In-flight work (mid-DMA commands, scheduled completions) is fenced
// by the incarnation check when it lands. Idempotent while down.
func (n *NIC) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.downAt = n.eng.Now()
	n.stats.Crashes++
	for _, e := range n.entries {
		// The trigger list dies with the incarnation; the auditor forgets
		// each instance so its live-fired set stays bounded.
		n.au.TriggerRetired(int(n.id), e.regSeq)
	}
	n.entries = nil
	n.regions = nil
	for {
		if _, ok := n.trigFIFO.TryPop(); !ok {
			break
		}
	}
	for {
		if _, ok := n.cmdQ.TryPop(); !ok {
			break
		}
	}
	n.cmdPending = nil
	if n.rel != nil {
		n.rel.cancelAllTimers()
		// Fresh maps: sequence numbers, windows, and peer-dead verdicts all
		// die with the incarnation.
		n.rel = newReliability(n, n.cfg.Reliability)
	}
}

// Restart brings a crashed NIC back cold under a new incarnation epoch and
// announces the new epoch to the fabric is the node layer's job (it knows
// the peer set); see AnnounceEpoch.
func (n *NIC) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.inc++
	n.stats.Restarts++
	n.au.Incarnated(n.eng.Now(), int(n.id), n.inc-1, n.inc)
	if n.cfg.Reliability.Enabled {
		// Cold state; OnPeerDead callbacks from the previous life are gone
		// with the processes that registered them.
		n.rel = newReliability(n, n.cfg.Reliability)
	}
}

// AnnounceEpoch emits a small control frame advertising this NIC's
// incarnation to one peer. Receivers adopt the epoch and reset their
// per-peer reliability state toward this node, so retransmits staged
// against the dead incarnation stop immediately instead of burning their
// retry budget.
func (n *NIC) AnnounceEpoch(peer network.NodeID) {
	if peer == n.id {
		return
	}
	n.emit(&network.Message{
		Src:     n.id,
		Dst:     peer,
		Size:    epochAnnounceBytes,
		Kind:    "epoch",
		Payload: &epochAnnounce{},
	})
}

// MarkPeerCrashed records an explicit crash report for a peer (link-down
// propagated by the cluster): the peer is declared dead immediately with
// reason PeerDeadCrash, firing OnPeerDead callbacks, instead of waiting for
// the retry budget to burn down. No-op without reliability or when the
// peer is already dead.
func (n *NIC) MarkPeerCrashed(peer network.NodeID) {
	if n.rel == nil || n.down || peer == n.id {
		return
	}
	ch := n.rel.chanTo(peer)
	if ch.dead {
		return
	}
	n.rel.declareDead(ch, PeerDeadCrash)
}

// MarkPeerPartitioned records a partition diagnosis for a peer: the peer is
// declared dead with reason PeerDeadPartition so pending traffic is
// withdrawn and upper layers route around it, but — unlike a crash — the
// verdict is designed to be healed (see HealPeer). No-op without
// reliability or when the peer is already dead.
func (n *NIC) MarkPeerPartitioned(peer network.NodeID) {
	if n.rel == nil || n.down || peer == n.id {
		return
	}
	ch := n.rel.chanTo(peer)
	if ch.dead {
		return
	}
	n.rel.declareDead(ch, PeerDeadPartition)
}

// MarkPeerCorrupt records a quarantine verdict for a peer: the membership
// layer accumulated enough SDC strikes to stop trusting the peer's data,
// so the channel is withdrawn with reason PeerDeadCorrupt and upper
// layers recompute without it. Permanent: quarantined peers are never
// healed. No-op without reliability or when the peer is already dead.
func (n *NIC) MarkPeerCorrupt(peer network.NodeID) {
	if n.rel == nil || n.down || peer == n.id {
		return
	}
	ch := n.rel.chanTo(peer)
	if ch.dead {
		return
	}
	n.rel.declareDead(ch, PeerDeadCorrupt)
}

// HealPeer clears a dead verdict against a peer — a healed partition or a
// retracted false suspicion. The channel restarts under a fresh session
// number (no incarnation bump: the node never died), which the receiver
// adopts lazily from the first frame. No-op for live or unknown peers.
func (n *NIC) HealPeer(peer network.NodeID) {
	if n.rel == nil || n.down || peer == n.id {
		return
	}
	n.rel.heal(peer)
}
