package nic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Property: under random interleavings of registrations and trigger
// writes across many tags — including relaxed-sync (write-first) tags and
// over-triggering — every registered operation fires exactly once, and
// operations never fire before their threshold is met.
func TestTriggerListMultiTagFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 2)
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0xF, Counter: recv})

		ntags := rng.Intn(6) + 1
		type tagPlan struct {
			threshold int64
			writes    int
			regAt     sim.Time
		}
		plans := make([]tagPlan, ntags)
		for i := range plans {
			th := int64(rng.Intn(4) + 1)
			plans[i] = tagPlan{
				threshold: th,
				writes:    int(th) + rng.Intn(3),
				regAt:     sim.Time(rng.Intn(5000)) * sim.Nanosecond,
			}
		}
		for i, pl := range plans {
			i, pl := i, pl
			r.eng.Go(fmt.Sprintf("host%d", i), func(p *sim.Proc) {
				p.Sleep(pl.regAt)
				if err := r.nics[0].RegisterTriggered(p, uint64(i+1), pl.threshold, &Command{
					Kind: OpPut, Target: 1, MatchBits: 0xF, Size: 8,
				}); err != nil {
					t.Error(err)
				}
			})
			r.eng.Go(fmt.Sprintf("gpu%d", i), func(p *sim.Proc) {
				for w := 0; w < pl.writes; w++ {
					p.Sleep(sim.Time(rng.Intn(2000)) * sim.Nanosecond)
					r.nics[0].TriggerWrite(uint64(i + 1))
				}
			})
		}
		r.eng.Run()
		st := r.nics[0].Stats()
		return recv.Value() == int64(ntags) &&
			st.TriggerFires == int64(ntags) &&
			st.DroppedTriggers == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved sequential reuse of one tag (register, satisfy,
// re-register, satisfy, ...) fires exactly once per generation.
func TestTriggerTagReuseFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 2)
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0xF, Counter: recv})
		gens := rng.Intn(5) + 2
		ok := true
		r.eng.Go("host", func(p *sim.Proc) {
			for g := 0; g < gens; g++ {
				th := int64(rng.Intn(3) + 1)
				if err := r.nics[0].RegisterTriggered(p, 1, th, &Command{
					Kind: OpPut, Target: 1, MatchBits: 0xF, Size: 8,
				}); err != nil {
					ok = false
					return
				}
				for w := int64(0); w < th; w++ {
					p.Sleep(sim.Time(rng.Intn(500)+1) * sim.Nanosecond)
					r.nics[0].TriggerWrite(1)
				}
				recv.WaitGE(p, int64(g)+1)
			}
		})
		r.eng.Run()
		return ok && recv.Value() == int64(gens)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a get and concurrent puts against overlapping regions never
// misroute — each reply lands at its own requester, each put at its ME.
func TestMixedOpsFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 3)
		putCT := sim.NewCounter(r.eng)
		r.nics[2].ExposeRegion(&Region{
			MatchBits: 0x10, Counter: putCT,
			ReadBack: func(size int64) any { return size * 3 },
		})
		nops := rng.Intn(8) + 2
		puts, gets := 0, 0
		bad := false
		done := sim.NewCounter(r.eng)
		for i := 0; i < nops; i++ {
			src := rng.Intn(2) // nodes 0 and 1 both talk to node 2
			if rng.Intn(2) == 0 {
				puts++
				r.eng.Go(fmt.Sprintf("put%d", i), func(p *sim.Proc) {
					r.nics[src].PostCommand(p, &Command{
						Kind: OpPut, Target: 2, MatchBits: 0x10, Size: 64,
						OnLocalComplete: func() { done.Add(1) },
					})
				})
			} else {
				gets++
				sz := int64(rng.Intn(100) + 1)
				r.eng.Go(fmt.Sprintf("get%d", i), func(p *sim.Proc) {
					c := &Command{Kind: OpGet, Target: 2, MatchBits: 0x10, Size: sz}
					cc := c
					c.OnLocalComplete = func() {
						if cc.Data != sz*3 {
							bad = true
						}
						done.Add(1)
					}
					r.nics[src].PostCommand(p, c)
				})
			}
		}
		r.eng.Run()
		// The region counter counts both put landings and served gets.
		return !bad && putCT.Value() == int64(puts+gets) && done.Value() == int64(nops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a seeded injector dropping and delaying MMIO trigger
// writes, and a random register/write interleaving (including relaxed-sync
// write-first tags), the entry fires exactly once iff at least threshold
// writes survive the bus, and never more than once regardless.
func TestRelaxedSyncRaceWithInjectedTriggerFaultsFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 2)
		inj := fault.NewInjector(config.FaultConfig{
			Seed:            seed,
			TrigDropProb:    0.3,
			TrigDelayJitter: sim.Time(rng.Intn(5000)) * sim.Nanosecond,
		})
		r.nics[0].SetInjector(inj)
		recv := sim.NewCounter(r.eng)
		r.nics[1].ExposeRegion(&Region{MatchBits: 0xF, Counter: recv})

		threshold := int64(rng.Intn(4) + 1)
		writes := int(threshold) + rng.Intn(6)
		regAt := sim.Time(rng.Intn(4000)) * sim.Nanosecond
		r.eng.Go("host", func(p *sim.Proc) {
			p.Sleep(regAt)
			if err := r.nics[0].RegisterTriggered(p, 1, threshold, &Command{
				Kind: OpPut, Target: 1, MatchBits: 0xF, Size: 8,
			}); err != nil {
				t.Error(err)
			}
		})
		r.eng.Go("gpu", func(p *sim.Proc) {
			for w := 0; w < writes; w++ {
				p.Sleep(sim.Time(rng.Intn(1000)) * sim.Nanosecond)
				r.nics[0].TriggerWrite(1)
			}
		})
		r.eng.Run()
		survived := int64(writes) - r.nics[0].Stats().LostTriggerWrites
		want := int64(0)
		if survived >= threshold {
			want = 1
		}
		return recv.Value() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under random loss and corruption rates — lost ACKs force
// duplicate data frames, and corrupt duplicates provoke duplicate NACKs
// for the same sequence number — the reliable layer still delivers every
// message exactly once, in order, and the engine drains (no stuck window).
func TestReliableDuplicateNackFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		faults := config.FaultConfig{
			Seed:        seed,
			DropProb:    0.1 + rng.Float64()*0.2,
			CorruptProb: 0.1 + rng.Float64()*0.2,
		}
		r := newRelRig(t, 2, relDefaults(), faults)
		count := rng.Intn(15) + 5
		recv, order := postPuts(r, count)
		r.eng.Run() // returning at all proves no frame is stuck unarmed
		if recv.Value() != int64(count) || len(*order) != count {
			return false
		}
		for i, v := range *order {
			if v != i {
				return false
			}
		}
		return !r.nics[0].PeerDead(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the receiver NIC crashes and restarts at a random instant
// mid-stream. ACKs and retransmits from the dead incarnation are fenced by
// the epoch protocol, the sender's reliability state resets on adopting the
// new epoch, and the stream continues: no payload is ever delivered twice,
// the post-reset sequence space starts clean, and nothing wedges — the
// sender's window is empty when the engine drains.
func TestReliableAckAfterEpochResetFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRelRig(t, 2, relDefaults(), config.FaultConfig{})
		recv := sim.NewCounter(r.eng)
		var order []int
		region := &Region{
			MatchBits: 0x10,
			Counter:   recv,
			OnDelivery: func(d Delivery) {
				order = append(order, d.Data.(int))
			},
		}
		r.nics[1].ExposeRegion(region)
		count := rng.Intn(12) + 8
		r.eng.Go("sender", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				r.nics[0].PostCommand(p, &Command{
					Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 4 << 10, Data: i,
				})
				p.Sleep(sim.Time(rng.Intn(2000)) * sim.Nanosecond)
			}
		})
		r.eng.Go("chaos", func(p *sim.Proc) {
			p.Sleep(sim.Time(rng.Intn(20000)+500) * sim.Nanosecond)
			r.nics[1].Crash()
			p.Sleep(sim.Time(rng.Intn(5000)+100) * sim.Nanosecond)
			r.nics[1].Restart()
			r.nics[1].ExposeRegion(region) // regions died with the old life
			r.nics[1].AnnounceEpoch(0)
		})
		r.eng.Run()
		// Exactly-once: a payload fenced or reset away may be lost (the
		// restarted node lost everything anyway) but must never double up.
		dup := map[int]bool{}
		for _, v := range order {
			if dup[v] {
				return false
			}
			dup[v] = true
		}
		if int(recv.Value()) != len(order) {
			return false
		}
		// The sender adopted the new incarnation exactly once and holds no
		// wedged unacknowledged frames against it (epoch adoption may have
		// reset the channel away entirely: also clean).
		if st := r.nics[0].Stats(); st.EpochResets != 1 {
			return false
		}
		ch := r.nics[0].rel.chans[1]
		return ch == nil || len(ch.inflight) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
