package nic

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/sim"
)

// newCappedRig is newRig with a ResourceConfig applied to every NIC.
func newCappedRig(t testing.TB, n int, res config.ResourceConfig) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.NIC.Resources = res
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, n)
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		r.nics = append(r.nics, New(eng, cfg.NIC, network.NodeID(i), fab))
	}
	return r
}

func TestRegisterTriggeredTypedErrors(t *testing.T) {
	r := newCappedRig(t, 2, config.ResourceConfig{TriggerEntries: 2})
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x90})
	r.eng.Go("host", func(p *sim.Proc) {
		op := func() *Command { return &Command{Kind: OpPut, Target: 1, MatchBits: 0x90, Size: 8} }
		if err := r.nics[0].RegisterTriggered(p, 1, 1, op()); err != nil {
			t.Errorf("first registration: %v", err)
		}
		if err := r.nics[0].RegisterTriggered(p, 2, 1, op()); err != nil {
			t.Errorf("second registration: %v", err)
		}
		if err := r.nics[0].RegisterTriggered(p, 3, 1, op()); !errors.Is(err, ErrTriggerListFull) {
			t.Errorf("over-capacity registration = %v, want ErrTriggerListFull", err)
		}
		if err := r.nics[0].RegisterTriggered(p, 1, 1, op()); !errors.Is(err, ErrTagBusy) {
			t.Errorf("duplicate tag = %v, want ErrTagBusy", err)
		}
	})
	r.eng.Run()
	s := r.nics[0].Stats()
	if s.RegistrationRejects != 1 {
		t.Fatalf("RegistrationRejects = %d, want 1", s.RegistrationRejects)
	}
	if s.TriggerListHighWater != 2 {
		t.Fatalf("TriggerListHighWater = %d, want 2", s.TriggerListHighWater)
	}
}

// The ResourceConfig trigger cap overrides MaxTriggerEntries; a fired
// entry frees its slot for the next registration.
func TestTriggerCapFreesOnFire(t *testing.T) {
	r := newCappedRig(t, 2, config.ResourceConfig{TriggerEntries: 1})
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x91, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		op := func() *Command { return &Command{Kind: OpPut, Target: 1, MatchBits: 0x91, Size: 8} }
		if err := r.nics[0].RegisterTriggered(p, 1, 1, op()); err != nil {
			t.Errorf("register: %v", err)
		}
		if err := r.nics[0].RegisterTriggered(p, 2, 1, op()); !errors.Is(err, ErrTriggerListFull) {
			t.Errorf("cap=1 second registration = %v, want ErrTriggerListFull", err)
		}
		r.nics[0].TriggerWrite(1)
		recv.WaitGE(p, 1)
		if err := r.nics[0].RegisterTriggered(p, 2, 1, op()); err != nil {
			t.Errorf("post-fire registration: %v", err)
		}
	})
	r.eng.Run()
}

// Placeholder budget: relaxed-sync writes beyond the dedicated placeholder
// cap are dropped and counted even while registered entries have room.
func TestPlaceholderBudget(t *testing.T) {
	r := newCappedRig(t, 2, config.ResourceConfig{TriggerEntries: 8, PlaceholderEntries: 2})
	r.eng.Go("gpu", func(p *sim.Proc) {
		for tag := uint64(1); tag <= 4; tag++ {
			r.nics[0].TriggerWrite(tag)
			p.Sleep(sim.Microsecond) // serialize so the FIFO never bounds
		}
	})
	r.eng.Run()
	s := r.nics[0].Stats()
	if s.PlaceholdersMade != 2 {
		t.Fatalf("PlaceholdersMade = %d, want 2", s.PlaceholdersMade)
	}
	if s.DroppedTriggers != 2 {
		t.Fatalf("DroppedTriggers = %d, want 2", s.DroppedTriggers)
	}
	if s.PlaceholderHighWater != 2 {
		t.Fatalf("PlaceholderHighWater = %d, want 2", s.PlaceholderHighWater)
	}
}

// Bounded command queue: a blocking poster stalls until the executor
// drains; every command still executes, in order, nothing is dropped.
func TestCmdQueueBackpressure(t *testing.T) {
	r := newCappedRig(t, 2, config.ResourceConfig{CmdQueueDepth: 1})
	recv := sim.NewCounter(r.eng)
	var order []int64
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x92, Counter: recv,
		OnDelivery: func(d Delivery) { order = append(order, d.Size) },
	})
	const puts = 6
	r.eng.Go("host", func(p *sim.Proc) {
		for i := 1; i <= puts; i++ {
			r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x92, Size: int64(i)})
		}
		recv.WaitGE(p, puts)
	})
	r.eng.Run()
	if recv.Value() != puts {
		t.Fatalf("delivered %d/%d under backpressure", recv.Value(), puts)
	}
	for i, sz := range order {
		if sz != int64(i+1) {
			t.Fatalf("order = %v, want sizes 1..%d in sequence", order, puts)
		}
	}
	s := r.nics[0].Stats()
	if s.CmdQueueStalls == 0 {
		t.Fatal("depth-1 queue never stalled a poster")
	}
	if s.CmdQueueHighWater != 1 {
		t.Fatalf("CmdQueueHighWater = %d, want 1", s.CmdQueueHighWater)
	}
}

// Non-blocking sources (trigger fires, doorbells) defer instead of
// blocking; deferred commands execute once slots free.
func TestCmdQueueDefersAsyncSources(t *testing.T) {
	r := newCappedRig(t, 2, config.ResourceConfig{CmdQueueDepth: 1})
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x93, Counter: recv})
	const posts = 5
	for i := 0; i < posts; i++ {
		r.nics[0].PostCommandAsync(&Command{Kind: OpPut, Target: 1, MatchBits: 0x93, Size: 8})
	}
	r.eng.Run()
	if recv.Value() != posts {
		t.Fatalf("delivered %d/%d deferred commands", recv.Value(), posts)
	}
	if r.nics[0].Stats().CmdDeferred == 0 {
		t.Fatal("depth-1 queue never deferred an async post")
	}
}

// The bounded trigger FIFO's drop path and high-water accounting.
func TestTriggerFIFODropAccounting(t *testing.T) {
	cfg := config.Default()
	cfg.NIC.TriggerFIFODepth = 2
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, 2)
	n0 := New(eng, cfg.NIC, 0, fab)
	New(eng, cfg.NIC, 1, fab)
	const writes = 50
	eng.Go("gpu", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			n0.TriggerWrite(1) // no sleep: floods the FIFO
		}
	})
	eng.RunUntil(1 * sim.Millisecond)
	s := n0.Stats()
	if s.DroppedTriggers == 0 {
		t.Fatal("bounded FIFO should have dropped under flood")
	}
	if s.TrigFIFOHighWater != 2 {
		t.Fatalf("TrigFIFOHighWater = %d, want the configured depth 2", s.TrigFIFOHighWater)
	}
	// Conservation: every write is accounted exactly once.
	if got := s.TriggerWrites; got != writes {
		t.Fatalf("TriggerWrites = %d, want %d", got, writes)
	}
}

func TestStarvedTriggers(t *testing.T) {
	r := newRig(t, 2)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x94})
	r.eng.Go("host", func(p *sim.Proc) {
		// Registered but under-counted entry.
		if err := r.nics[0].RegisterTriggered(p, 5, 3, &Command{Kind: OpPut, Target: 1, MatchBits: 0x94, Size: 8}); err != nil {
			t.Errorf("register: %v", err)
		}
		r.nics[0].TriggerWrite(5)
		// Placeholder the host never backs.
		r.nics[0].TriggerWrite(6)
	})
	r.eng.Run()
	starved := r.nics[0].StarvedTriggers()
	if len(starved) != 2 {
		t.Fatalf("starved = %+v, want 2 entries", starved)
	}
	byTag := map[uint64]sim.StarvedTrigger{}
	for _, s := range starved {
		byTag[s.Tag] = s
	}
	if s := byTag[5]; !s.Registered || s.Counter != 1 || s.Threshold != 3 || s.Node != 0 {
		t.Fatalf("tag 5 = %+v", s)
	}
	if s := byTag[6]; s.Registered || s.Counter != 1 {
		t.Fatalf("tag 6 = %+v", s)
	}
}

func TestResourceConfigValidation(t *testing.T) {
	cfg := config.Default()
	cfg.NIC.Resources.TriggerEntries = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative TriggerEntries validated")
	}
	cfg = config.Default()
	cfg.NIC.Resources.TriggerEntries = 2
	cfg.NIC.Resources.PlaceholderEntries = 4
	if err := cfg.Validate(); err == nil {
		t.Error("placeholder budget above trigger capacity validated")
	}
	cfg = config.Default()
	cfg.NIC.Resources = config.ResourceConfig{TriggerEntries: 4, PlaceholderEntries: 2, CmdQueueDepth: 8, EQDepth: 16}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid resource config rejected: %v", err)
	}
	if !cfg.NIC.Resources.Enabled() {
		t.Error("non-zero resource config reports disabled")
	}
	if (config.ResourceConfig{}).Enabled() {
		t.Error("zero resource config reports enabled")
	}
}
