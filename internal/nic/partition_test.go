package nic

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// grayLink degrades both directions between nodes 0 and 1: latency inflated
// 10x and a quarter of packets lost, the canonical gray link.
func grayLink(seed int64) config.FaultConfig {
	return config.FaultConfig{Seed: seed, Degrade: config.DegradeConfig{Windows: []config.DegradeWindow{
		{Src: 0, Dst: 1, Until: sim.Second, LatencyFactor: 10, LossProb: 0.25},
		{Src: 1, Dst: 0, Until: sim.Second, LatencyFactor: 10, LossProb: 0.25},
	}}}
}

// On a gray link the static timer pays its full conservative RTO (30us)
// per loss; the adaptive timer has converged to the real degraded RTT and
// recovers each loss in round-trip-scale time, so the same transfer under
// the same loss schedule completes sooner. Both must still deliver every
// frame exactly once and in order.
func TestAdaptiveRTORecoversFasterOnGrayLink(t *testing.T) {
	run := func(adaptive bool) (sim.Time, Stats) {
		rel := relDefaults()
		rel.AdaptiveRTO = adaptive
		r := newRelRig(t, 2, rel, grayLink(7))
		recv, order := postPuts(r, 20)
		r.eng.Run()
		if recv.Value() != 20 {
			t.Fatalf("adaptive=%v: recv = %d, want 20", adaptive, recv.Value())
		}
		assertInOrder(t, *order, 20)
		return r.eng.Now(), r.nics[0].Stats()
	}
	static, _ := run(false)
	adaptive, st := run(true)
	if adaptive >= static {
		t.Fatalf("adaptive RTO finished at %v, static at %v: adaptation bought nothing", adaptive, static)
	}
	if st.RTTSamples == 0 {
		t.Fatal("no RTT samples folded into the estimator")
	}
	if st.Retransmits == 0 {
		t.Fatal("25%% loss produced no retransmits — the run proves nothing")
	}
}

// The per-peer link-health view: SRTT converges to a real round trip and
// the health EWMA is pulled below 1 by the retransmits a lossy link forces.
func TestLinkHealthReflectsGrayLink(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), grayLink(7))
	recv, _ := postPuts(r, 20)
	r.eng.Run()
	if recv.Value() != 20 {
		t.Fatalf("recv = %d", recv.Value())
	}
	lh, ok := r.nics[0].LinkHealth(1)
	if !ok {
		t.Fatal("no link-health view toward an active peer")
	}
	if lh.SRTT <= 0 {
		t.Fatalf("SRTT = %v, want a converged positive estimate", lh.SRTT)
	}
	if lh.Score >= 1 || lh.Score <= 0 {
		t.Fatalf("health score = %v on a lossy-but-alive link, want strictly within (0, 1)", lh.Score)
	}
	if lh.Dead {
		t.Fatal("gray link escalated to a dead verdict")
	}
	// A clean fabric keeps the score at exactly 1.
	rc := newRelRig(t, 2, relDefaults(), config.FaultConfig{})
	recvC, _ := postPuts(rc, 20)
	rc.eng.Run()
	if recvC.Value() != 20 {
		t.Fatalf("clean recv = %d", recvC.Value())
	}
	if lhc, _ := rc.nics[0].LinkHealth(1); lhc.Score != 1 {
		t.Fatalf("clean-link health = %v, want 1", lhc.Score)
	}
}

// A partition verdict absorbs outbound traffic; HealPeer reopens the
// channel under a fresh session that the receiver adopts lazily. Frames
// from before the cut and after the heal each arrive exactly once; frames
// sent into the cut are withdrawn, never delivered late.
func TestPartitionHealReopensFreshSession(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{})
	recv := sim.NewCounter(r.eng)
	var order []int
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x10,
		Counter:   recv,
		OnDelivery: func(d Delivery) {
			order = append(order, d.Data.(int))
		},
	})
	put := func(p *sim.Proc, i int) {
		r.nics[0].PostCommand(p, &Command{
			Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 4 << 10, Data: i,
		})
	}
	r.eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			put(p, i)
		}
		p.Sleep(30 * sim.Microsecond) // drain phase 1
		r.nics[0].MarkPeerPartitioned(1)
		if info, ok := r.nics[0].PeerDeadDetail(1); !ok || info.Reason != PeerDeadPartition {
			t.Errorf("dead detail = %+v, %v; want a partition verdict", info, ok)
		}
		put(p, 3) // into the cut: absorbed
		put(p, 4)
		p.Sleep(5 * sim.Microsecond)
		r.nics[0].HealPeer(1)
		if r.nics[0].PeerDead(1) {
			t.Error("peer still dead after HealPeer")
		}
		for i := 5; i < 8; i++ {
			put(p, i)
		}
	})
	r.eng.Run()
	want := []int{0, 1, 2, 5, 6, 7}
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("delivered %v, want %v", order, want)
		}
	}
	st := r.nics[0].Stats()
	if st.PeersDeclaredPartitioned != 1 || st.PeersHealed != 1 {
		t.Fatalf("sender partition accounting: part=%d healed=%d, want 1/1", st.PeersDeclaredPartitioned, st.PeersHealed)
	}
	if st.SendsToDeadPeer != 2 {
		t.Fatalf("SendsToDeadPeer = %d, want 2 (frames 3 and 4)", st.SendsToDeadPeer)
	}
	rs := r.nics[1].Stats()
	if rs.SessionResets != 1 {
		t.Fatalf("receiver SessionResets = %d, want 1 (fresh post-heal session)", rs.SessionResets)
	}
}
