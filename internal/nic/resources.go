package nic

import (
	"errors"

	"repro/internal/sim"
)

// This file is the NIC's bounded-resource model. The paper's trigger list
// is explicitly a small NIC structure ("the trigger list can be held in a
// small amount of NIC memory"); real Portals NICs likewise bound their
// event and command queues. config.ResourceConfig makes each capacity
// explicit, and this layer enforces it with typed errors, flow-control
// drops, and high-water accounting — instead of silent unbounded growth.
// Every check is pay-for-use: a zero-valued ResourceConfig leaves the data
// path bit-for-bit identical to the unbounded seed behavior.

var (
	// ErrTriggerListFull reports a registration rejected because every
	// trigger-list entry is active. The caller may retry after one of its
	// outstanding entries fires (see core.Host.TrigPutPressure).
	ErrTriggerListFull = errors.New("trigger list full")
	// ErrCmdQueueFull reports a non-blocking command post that found the
	// bounded host command queue full.
	ErrCmdQueueFull = errors.New("command queue full")
	// ErrTagBusy reports a registration against a tag that already has a
	// pending (unfired) operation.
	ErrTagBusy = errors.New("tag already has a pending operation")
)

// capTriggers returns the trigger-list capacity in force: the resource
// model's override when set, else the paper's MaxTriggerEntries.
func (n *NIC) capTriggers() int {
	if c := n.cfg.Resources.TriggerEntries; c > 0 {
		return c
	}
	return n.cfg.MaxTriggerEntries
}

// capPlaceholders returns the relaxed-sync placeholder budget; 0 means
// placeholders compete only for the shared trigger-list capacity.
func (n *NIC) capPlaceholders() int { return n.cfg.Resources.PlaceholderEntries }

// activePlaceholders counts unfired entries still waiting for their host
// registration (relaxed-sync placeholders).
func (n *NIC) activePlaceholders() int {
	c := 0
	for _, e := range n.entries {
		if !e.fired && !e.hasOp {
			c++
		}
	}
	return c
}

// noteTriggerWater refreshes the trigger-list high-water marks after an
// entry allocation.
func (n *NIC) noteTriggerWater() {
	if hw := int64(n.activeEntries()); hw > n.stats.TriggerListHighWater {
		n.stats.TriggerListHighWater = hw
	}
	if hw := int64(n.activePlaceholders()); hw > n.stats.PlaceholderHighWater {
		n.stats.PlaceholderHighWater = hw
	}
}

// pushCmd puts a command on the NIC execution queue and tracks the queue's
// high-water mark.
func (n *NIC) pushCmd(c *Command) {
	n.cmdQ.Push(c)
	if hw := int64(n.cmdQ.Len()); hw > n.stats.CmdQueueHighWater {
		n.stats.CmdQueueHighWater = hw
	}
}

// enqueueCmd admits a command from a source that cannot block (trigger
// fires, doorbell flights, NIC-internal replies). With a bounded command
// queue, overflow defers the command to a pending list drained in FIFO
// order as the executor frees slots — hardware would leave these descriptors
// in host memory until the queue advances; nothing is dropped.
func (n *NIC) enqueueCmd(c *Command) {
	if d := n.cfg.Resources.CmdQueueDepth; d > 0 && (len(n.cmdPending) > 0 || n.cmdQ.Len() >= d) {
		n.cmdPending = append(n.cmdPending, c)
		n.stats.CmdDeferred++
		return
	}
	n.pushCmd(c)
}

// admitPending moves deferred commands onto the queue while slots are free,
// then wakes blocked posters (PostCommand) if space remains. Called by the
// command executor after each pop.
func (n *NIC) admitPending() {
	d := n.cfg.Resources.CmdQueueDepth
	if d == 0 {
		return
	}
	for len(n.cmdPending) > 0 && n.cmdQ.Len() < d {
		c := n.cmdPending[0]
		n.cmdPending[0] = nil
		n.cmdPending = n.cmdPending[1:]
		n.pushCmd(c)
	}
	if len(n.cmdPending) == 0 && n.cmdQ.Len() < d && n.cmdSlots.Waiters() > 0 {
		n.cmdSlots.Broadcast()
	}
}

// StarvedTriggers reports every trigger-list entry that never fired — the
// NIC-side evidence the sim watchdog folds into a hang diagnosis. Entries
// with a registered op report their threshold; relaxed-sync placeholders
// the host never backed report Registered=false.
func (n *NIC) StarvedTriggers() []sim.StarvedTrigger {
	var out []sim.StarvedTrigger
	for _, e := range n.entries {
		if e.fired {
			continue
		}
		out = append(out, sim.StarvedTrigger{
			Node:       int(n.id),
			Tag:        e.tag,
			Counter:    e.counter,
			Threshold:  e.threshold,
			Registered: e.hasOp,
		})
	}
	return out
}
