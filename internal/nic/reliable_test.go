package nic

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
)

// newRelRig wires n NICs with the reliability layer enabled and an optional
// fault injector on both the fabric and the NICs.
func newRelRig(t testing.TB, n int, rel config.ReliabilityConfig, faults config.FaultConfig) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.NIC.Reliability = rel
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, n)
	inj := fault.NewInjector(faults)
	fab.SetInjector(inj)
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		nc := New(eng, cfg.NIC, network.NodeID(i), fab)
		nc.SetInjector(inj)
		r.nics = append(r.nics, nc)
	}
	return r
}

func relDefaults() config.ReliabilityConfig { return config.DefaultReliability() }

// postPuts sends count puts 0→1 tagged with their index and returns the
// receive counter plus the delivered payloads in arrival order.
func postPuts(r *rig, count int) (*sim.Counter, *[]int) {
	recv := sim.NewCounter(r.eng)
	order := &[]int{}
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x10,
		Counter:   recv,
		OnDelivery: func(d Delivery) {
			*order = append(*order, d.Data.(int))
		},
	})
	r.eng.Go("host", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r.nics[0].PostCommand(p, &Command{
				Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 4 << 10, Data: i,
			})
		}
	})
	return recv, order
}

func assertInOrder(t *testing.T, order []int, count int) {
	t.Helper()
	if len(order) != count {
		t.Fatalf("delivered %d messages, want %d", len(order), count)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v: position %d holds %d", order, i, v)
		}
	}
}

// A lossless fabric with reliability on must behave exactly like the
// unreliable path: every frame delivered once, first try, no retransmits.
func TestReliableLosslessExactlyOnce(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{})
	recv, order := postPuts(r, 10)
	r.eng.Run()
	if recv.Value() != 10 {
		t.Fatalf("recv = %d", recv.Value())
	}
	assertInOrder(t, *order, 10)
	st := r.nics[0].Stats()
	if st.Retransmits != 0 || st.PeersDeclaredDead != 0 {
		t.Fatalf("lossless run did recovery work: %+v", st)
	}
	if rs := r.nics[1].Stats(); rs.AcksSent != 10 || rs.DupesDropped != 0 {
		t.Fatalf("receiver stats = %+v", rs)
	}
}

// Heavy per-packet loss: the retransmit machinery must still deliver every
// frame exactly once and in order.
func TestReliableRecoversFromDrops(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{Seed: 1, DropProb: 0.25})
	recv, order := postPuts(r, 20)
	r.eng.Run()
	if recv.Value() != 20 {
		t.Fatalf("recv = %d, want 20 (lost despite reliability)", recv.Value())
	}
	assertInOrder(t, *order, 20)
	if r.nics[0].Stats().Retransmits == 0 {
		t.Fatal("25%% drop produced no retransmits")
	}
	if r.fab.PacketsDropped() == 0 {
		t.Fatal("injector never fired")
	}
}

// Corruption without loss: the receiver NACKs, the sender fast-retransmits,
// and corrupt frames are never dispatched upward.
func TestReliableNacksCorruptFrames(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{Seed: 3, CorruptProb: 0.3})
	recv, order := postPuts(r, 20)
	r.eng.Run()
	if recv.Value() != 20 {
		t.Fatalf("recv = %d", recv.Value())
	}
	assertInOrder(t, *order, 20)
	if r.nics[1].Stats().NacksSent == 0 {
		t.Fatal("30%% corruption produced no NACKs")
	}
	if r.nics[0].Stats().Retransmits == 0 {
		t.Fatal("NACKs produced no retransmits")
	}
}

// An RTO far below the round-trip time makes the sender retransmit frames
// that were in fact delivered; the receiver must drop the duplicates and the
// upper layer must still see each message exactly once.
func TestReliableSuppressesDuplicates(t *testing.T) {
	rel := relDefaults()
	rel.RTOBase = 200 * sim.Nanosecond // « the ~6us round trip
	rel.RTOPerKB = 0
	r := newRelRig(t, 2, rel, config.FaultConfig{})
	recv, order := postPuts(r, 5)
	r.eng.Run()
	if recv.Value() != 5 {
		t.Fatalf("recv = %d, want exactly 5 (duplicates leaked)", recv.Value())
	}
	assertInOrder(t, *order, 5)
	if r.nics[1].Stats().DupesDropped == 0 {
		t.Fatal("premature RTO produced no duplicates")
	}
}

// Loss plus jitter reorders packets on the wire; per-pair delivery order
// must survive via the receiver's sequencing buffer.
func TestReliableOrderUnderLossAndJitter(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{
		Seed: 11, DropProb: 0.15, DelayJitter: 2 * sim.Microsecond,
	})
	recv, order := postPuts(r, 30)
	r.eng.Run()
	if recv.Value() != 30 {
		t.Fatalf("recv = %d", recv.Value())
	}
	assertInOrder(t, *order, 30)
}

// More outstanding sends than the window: excess frames queue on the NIC
// and drain as ACKs slide the window, preserving order.
func TestReliableWindowQueueing(t *testing.T) {
	rel := relDefaults()
	rel.WindowSize = 2
	r := newRelRig(t, 2, rel, config.FaultConfig{Seed: 5, DropProb: 0.2})
	recv, order := postPuts(r, 12)
	r.eng.Run()
	if recv.Value() != 12 {
		t.Fatalf("recv = %d", recv.Value())
	}
	assertInOrder(t, *order, 12)
}

// A fully dead wire exhausts the retry budget: the peer is declared dead,
// OnPeerDead fires, and later sends are absorbed instead of hanging the NIC.
func TestReliableRetryBudgetDeclaresPeerDead(t *testing.T) {
	rel := relDefaults()
	rel.RTOBase = 1 * sim.Microsecond
	rel.RetryBudget = 4
	r := newRelRig(t, 2, rel, config.FaultConfig{Seed: 2, DropProb: 1.0})
	var deadPeer network.NodeID = 255
	r.nics[0].OnPeerDead(func(peer network.NodeID) { deadPeer = peer })
	recv := sim.NewCounter(r.eng)
	r.nics[1].ExposeRegion(&Region{MatchBits: 0x10, Counter: recv})
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
		p.Sleep(1 * sim.Millisecond) // past budget exhaustion
		r.nics[0].PostCommand(p, &Command{Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 64})
	})
	r.eng.Run()
	if recv.Value() != 0 {
		t.Fatalf("recv = %d on a dead wire", recv.Value())
	}
	if deadPeer != 1 {
		t.Fatalf("OnPeerDead got %d, want 1", deadPeer)
	}
	if !r.nics[0].PeerDead(1) {
		t.Fatal("PeerDead(1) = false")
	}
	st := r.nics[0].Stats()
	if st.PeersDeclaredDead != 1 {
		t.Fatalf("PeersDeclaredDead = %d", st.PeersDeclaredDead)
	}
	if st.Retransmits != int64(rel.RetryBudget)-1 {
		t.Fatalf("Retransmits = %d, want budget-1 = %d", st.Retransmits, rel.RetryBudget-1)
	}
	if st.SendsToDeadPeer == 0 {
		t.Fatal("post-death send not counted")
	}
}

// Same seed, same run: the whole recovery trace (stats and finish time)
// must replay bit-for-bit; a different seed must diverge.
func TestReliableDeterministicReplay(t *testing.T) {
	run := func(seed int64) (sim.Time, Stats, Stats) {
		r := newRelRig(t, 2, relDefaults(), config.FaultConfig{Seed: seed, DropProb: 0.2})
		recv, _ := postPuts(r, 15)
		r.eng.Run()
		if recv.Value() != 15 {
			t.Fatalf("recv = %d", recv.Value())
		}
		return r.eng.Now(), r.nics[0].Stats(), r.nics[1].Stats()
	}
	t1, s1, r1 := run(9)
	t2, s2, r2 := run(9)
	if t1 != t2 || s1 != s2 || r1 != r2 {
		t.Fatalf("same seed diverged: %v/%v %+v/%+v", t1, t2, s1, s2)
	}
	t3, _, _ := run(10)
	if t3 == t1 {
		t.Log("different seed finished at the same time (possible but unlikely)")
	}
}

// Gets and atomics also ride the reliable channel: a lossy fabric must not
// lose a get reply or an atomic fetch result.
func TestReliableGetAndAtomicUnderLoss(t *testing.T) {
	r := newRelRig(t, 2, relDefaults(), config.FaultConfig{Seed: 21, DropProb: 0.25})
	r.nics[1].ExposeRegion(&Region{
		MatchBits: 0x20,
		ReadBack:  func(size int64) any { return size * 2 },
	})
	done := sim.NewCounter(r.eng)
	c := &Command{Kind: OpGet, Target: 1, MatchBits: 0x20, Size: 100, LocalCompletion: done}
	r.eng.Go("host", func(p *sim.Proc) {
		r.nics[0].PostCommand(p, c)
		done.WaitGE(p, 1)
	})
	r.eng.Run()
	if c.Data != int64(200) {
		t.Fatalf("get reply = %v, want 200", c.Data)
	}
}
