// End-to-end payload integrity: a CRC32C over the message body, computed
// at the source before the frame leaves (for triggered ops: over the GPU
// buffer at DMA time, modeling the kernel checksumming before trigger-
// fire), carried in the frame, and verified at the destination after
// reassembly. Distinct from the link checksum: the link CRC catches wire
// noise (Message.Corrupted) while the e2e sum catches corruption the link
// never sees — device-buffer bit flips, DMA errors, silent wire corruption
// (Message.SilentCorrupt). A failed verification on a reliable channel
// NACKs the frame for retransmission and counts one SDC strike against
// the sender, deduplicated per (session, sequence) so a retransmission of
// the same frame can never double-count; on the unreliable path the frame
// is dropped. Pay-for-use: with NICConfig.E2EChecksum off no sums are
// computed, no latency is added, and traces stay bit-for-bit.
package nic

import (
	"hash/crc32"

	"repro/internal/network"
)

// castagnoli is the CRC32C table (the polynomial iSCSI and modern NICs
// use for end-to-end data digests).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of the payload body.
func CRC32C(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumBody is implemented by payloads that expose their body bytes for
// end-to-end checksumming. The returned slice is read, never retained.
type ChecksumBody interface {
	ChecksumBytes() []byte
}

// Checksummed wraps a payload with a checksum the source GPU computed
// before trigger-fire: the NIC carries Sum in the frame instead of
// recomputing at DMA time, so corruption of the buffer between compute
// and send is caught at the destination.
type Checksummed struct {
	Data any
	Sum  uint32
}

// Corruptible is implemented by payloads that support deterministic
// injected bit flips. CorruptCopy returns a corrupted deep copy — never
// mutating the receiver, because staged wire metadata is shared between
// the sender's retransmit queue and the simulated wire. IsCorrupt reports
// whether this copy carries injected corruption (simulator omniscience,
// feeding the detected/undetected escape counters).
type Corruptible interface {
	CorruptCopy() any
	IsCorrupt() bool
}

// e2ePrepare resolves the outbound checksum for a put/atomic payload:
// a Checksummed wrapper always unwraps (the source already paid for the
// sum); otherwise, when the e2e layer is armed and the payload exposes
// its body, the NIC computes the sum at DMA time. Returns the unwrapped
// payload and whether checksum work was done (the caller prices it).
func (n *NIC) e2ePrepare(meta *wireMeta, data any) (any, bool) {
	if cs, ok := data.(Checksummed); ok {
		meta.e2eSum, meta.e2eHas = cs.Sum, true
		return cs.Data, true
	}
	if !n.cfg.E2EChecksum {
		return data, false
	}
	if body, ok := data.(ChecksumBody); ok {
		meta.e2eSum, meta.e2eHas = CRC32C(body.ChecksumBytes()), true
		return data, true
	}
	return data, false
}

// e2eRefresh recomputes a staged frame's checksum over the current body
// bytes on a copy of the wire metadata — the satellite rule for
// retransmissions: a re-sent frame must carry a freshly computed sum, and
// the copy keeps the receiver-visible pointer of earlier transmissions
// untouched.
func e2eRefresh(meta *wireMeta) *wireMeta {
	if !meta.e2eHas {
		return meta
	}
	body, ok := meta.data.(ChecksumBody)
	if !ok {
		return meta
	}
	fresh := *meta
	fresh.e2eSum = CRC32C(body.ChecksumBytes())
	return &fresh
}

// e2eMaterialize lands silent wire corruption into an arriving frame's
// payload: the link CRC passed, so the flipped bits are now application
// data. The corrupted payload goes onto a copied wireMeta — the original
// pointer is shared with the sender's retransmit queue, whose buffer did
// NOT corrupt. Payloads that cannot flip bits (no Corruptible support)
// pass through untouched: the flips landed in framing the model does not
// represent.
func e2eMaterialize(meta *wireMeta) *wireMeta {
	c, ok := meta.data.(Corruptible)
	if !ok {
		return meta
	}
	fresh := *meta
	fresh.data = c.CorruptCopy()
	return &fresh
}

// e2eFails reports whether the frame's end-to-end checksum mismatches its
// payload body. Frames without a carried sum (e2e off at the source, or a
// body the model cannot serialize) verify vacuously.
func (n *NIC) e2eFails(meta *wireMeta) bool {
	if !meta.e2eHas {
		return false
	}
	body, ok := meta.data.(ChecksumBody)
	if !ok {
		return false
	}
	return CRC32C(body.ChecksumBytes()) != meta.e2eSum
}

// IntegrityStrikes returns the number of deduplicated SDC strikes this
// NIC has recorded against frames from peer: corrupt frames the link
// accepted, indicting the sender's compute or memory rather than the
// wire. The membership layer reads strike counts to drive quarantine.
func (n *NIC) IntegrityStrikes(peer network.NodeID) int64 {
	if n.strikes == nil {
		return 0
	}
	return n.strikes[peer]
}

// noteE2EFail counts one e2e checksum failure, stamping the first one's
// simulated time for detection-latency reporting.
func (n *NIC) noteE2EFail() {
	if n.stats.E2EChecksumFails == 0 {
		n.stats.FirstE2EFailAt = n.eng.Now()
	}
	n.stats.E2EChecksumFails++
}

// addStrike counts one deduplicated strike against peer.
func (n *NIC) addStrike(peer network.NodeID) {
	if n.strikes == nil {
		n.strikes = make(map[network.NodeID]int64)
	}
	n.strikes[peer]++
	n.stats.SDCDetected++
}
