package nic

import (
	"encoding/binary"
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
)

// fuzzBlob is a checksummable, corruptible test payload.
type fuzzBlob struct {
	words   []uint32
	tainted bool
}

func (b fuzzBlob) ChecksumBytes() []byte {
	out := make([]byte, 0, 4*len(b.words))
	for _, w := range b.words {
		out = binary.LittleEndian.AppendUint32(out, w)
	}
	return out
}

func (b fuzzBlob) CorruptCopy() any {
	cp := b
	cp.words = append([]uint32(nil), b.words...)
	if len(cp.words) > 0 {
		cp.words[0] ^= 1 << 22
	}
	cp.tainted = true
	return cp
}

func (b fuzzBlob) IsCorrupt() bool { return b.tainted }

// newE2ERig wires two reliable NICs with the end-to-end checksum armed and
// buffer corruption at rest on the sender.
func newE2ERig(t testing.TB, bufferProb float64, seed int64) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.NIC.Reliability = config.DefaultReliability()
	cfg.NIC.E2EChecksum = true
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, cfg.Network, 2)
	inj := fault.NewInjector(config.FaultConfig{
		Seed: seed,
		SDC:  config.SDCConfig{Seed: seed, BufferNode: 0, BufferProb: bufferProb},
	})
	fab.SetInjector(inj)
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < 2; i++ {
		nc := New(eng, cfg.NIC, network.NodeID(i), fab)
		nc.SetInjector(inj)
		r.nics = append(r.nics, nc)
	}
	return r
}

// FuzzE2ERetransmit drives the e2e NACK/retransmit machinery under fuzzed
// buffer-corruption rates and batch sizes, with an epoch reset (sender
// crash + cold restart) between two batches. Invariants, enforced for any
// input:
//
//   - every frame is eventually delivered exactly once, in order — a
//     corrupted buffer is caught at the destination, NACKed, and the
//     retransmission (checksum freshly recomputed over the staged bytes,
//     now self-consistent) goes through;
//   - strikes equal injected corruptions exactly, across the epoch reset:
//     one NACK and one strike per corruption. A retransmission carrying a
//     stale checksum would fail verification again and NACK-loop forever
//     (failing delivery); a strike not deduplicated per (session, seq)
//     would double-count (failing the strike equality).
func FuzzE2ERetransmit(f *testing.F) {
	f.Add(int64(1), byte(0), uint8(4), uint8(4))
	f.Add(int64(2), byte(50), uint8(8), uint8(8))
	f.Add(int64(3), byte(100), uint8(1), uint8(1))
	f.Add(int64(7), byte(33), uint8(12), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, probByte byte, n1, n2 uint8) {
		c1, c2 := int64(n1%16)+1, int64(n2%16)
		prob := float64(probByte%101) / 100
		r := newE2ERig(t, prob, seed)

		recv := sim.NewCounter(r.eng)
		var order []int
		r.nics[1].ExposeRegion(&Region{
			MatchBits: 0x10,
			Counter:   recv,
			OnDelivery: func(d Delivery) {
				order = append(order, int(d.Data.(fuzzBlob).words[0]&0xFFFF))
			},
		})
		send := func(p *sim.Proc, from, to int64) {
			for i := from; i < to; i++ {
				r.nics[0].PostCommand(p, &Command{
					Kind: OpPut, Target: 1, MatchBits: 0x10, Size: 4 << 10,
					Data: fuzzBlob{words: []uint32{uint32(i), 0xDEAD0000 | uint32(i)}},
				})
			}
		}
		r.eng.Go("host", func(p *sim.Proc) {
			send(p, 0, c1)
			recv.WaitGE(p, c1)
			// Epoch reset: the sender crashes cold and comes back under a
			// new incarnation; the receiver adopts it (resetting its
			// per-session strike dedup) and the second batch flows.
			r.nics[0].Crash()
			p.Sleep(5 * sim.Microsecond)
			r.nics[0].Restart()
			r.nics[0].AnnounceEpoch(1)
			p.Sleep(5 * sim.Microsecond)
			send(p, c1, c1+c2)
			recv.WaitGE(p, c1+c2)
		})
		r.eng.Run()

		total := c1 + c2
		if recv.Value() != total {
			t.Fatalf("delivered %d frames, want %d", recv.Value(), total)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("delivery order %v: position %d holds %d", order, i, v)
			}
		}
		corruptions := r.nics[0].Injector().SDC().Stats().BufferCorruptions
		rs := r.nics[1].Stats()
		if strikes := r.nics[1].IntegrityStrikes(0); strikes != corruptions {
			t.Fatalf("strikes=%d, want exactly one per corruption (%d)", strikes, corruptions)
		}
		if rs.E2EChecksumFails != corruptions {
			t.Fatalf("E2EChecksumFails=%d, want %d (each corruption caught exactly once)", rs.E2EChecksumFails, corruptions)
		}
		if rs.NacksSent != corruptions {
			t.Fatalf("NacksSent=%d, want %d", rs.NacksSent, corruptions)
		}
		if rs.SDCUndetected != corruptions {
			t.Fatalf("SDCUndetected=%d, want %d (each freshened retransmit escapes the frame layer)", rs.SDCUndetected, corruptions)
		}
		if prob == 0 && (corruptions != 0 || r.nics[0].Stats().Retransmits != 0) {
			t.Fatalf("zero-rate run did integrity work: corruptions=%d retx=%d", corruptions, r.nics[0].Stats().Retransmits)
		}
	})
}
