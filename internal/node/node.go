// Package node composes the simulated subsystems — host CPU, GPU, RDMA NIC
// with GPU-TN trigger hardware, and the Portals-style runtime — into nodes,
// and wires nodes into a cluster over the star-topology fabric.
package node

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/network"
	"repro/internal/nic"
	"repro/internal/portals"
	"repro/internal/sim"
)

// Node is one compute node: a coherent APU (CPU+GPU sharing system memory,
// §5.1) attached to an RDMA NIC.
type Node struct {
	Index int
	Eng   *sim.Engine
	Cfg   config.SystemConfig

	CPU *cpu.CPU
	GPU *gpu.GPU
	NIC *nic.NIC
	Ptl *portals.Runtime

	HostMem *memsys.Hierarchy
	GPUMem  *memsys.Hierarchy
}

// Cluster is a set of nodes on one fabric.
type Cluster struct {
	Eng    *sim.Engine
	Cfg    config.SystemConfig
	Fabric network.Transport
	Nodes  []*Node
	// Injector is the cluster-wide fault injector; nil when cfg.Faults is
	// zero-valued (the lossless default).
	Injector *fault.Injector
}

// NewCluster builds an n-node cluster from the configuration. The
// configuration is validated; experiment drivers pass mutated presets.
// The topology is selected by cfg.Network.Topology: the Table 2 star by
// default, or a two-level tree with cfg.Network.TreeLeafSize nodes per
// leaf switch.
func NewCluster(cfg config.SystemConfig, n int) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("node: %v", err))
	}
	if n < 1 {
		panic("node: cluster needs at least one node")
	}
	eng := sim.NewEngine()
	var fab network.Transport
	switch cfg.Network.Topology {
	case config.TopologyStar, "":
		fab = network.NewFabric(eng, cfg.Network, n)
	case config.TopologyTree:
		fab = network.NewTreeFabric(eng, cfg.Network, n, cfg.Network.TreeLeafSize)
	default:
		panic(fmt.Sprintf("node: unknown topology %q", cfg.Network.Topology))
	}
	inj := fault.NewInjector(cfg.Faults)
	fab.SetInjector(inj)
	c := &Cluster{Eng: eng, Cfg: cfg, Fabric: fab, Injector: inj}
	for i := 0; i < n; i++ {
		hostMem := memsys.FromCPU(cfg.CPU)
		gpuMem := memsys.FromGPU(cfg.GPU, cfg.CPU)
		nc := nic.New(eng, cfg.NIC, network.NodeID(i), fab)
		nc.SetInjector(inj)
		if cfg.DiscreteGPU {
			nc.SetIOBusLatency(cfg.IOBusLatency)
		}
		nd := &Node{
			Index:   i,
			Eng:     eng,
			Cfg:     cfg,
			CPU:     cpu.New(eng, cfg.CPU, hostMem),
			GPU:     gpu.New(eng, cfg.GPU, gpuMem),
			NIC:     nc,
			Ptl:     portals.Init(eng, nc, i, n),
			HostMem: hostMem,
			GPUMem:  gpuMem,
		}
		c.Nodes = append(c.Nodes, nd)
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// Run drives the simulation until the event queue drains.
func (c *Cluster) Run() { c.Eng.Run() }

// RunUntil drives the simulation to the deadline.
func (c *Cluster) RunUntil(t sim.Time) { c.Eng.RunUntil(t) }

// GoEach spawns one host process per node (rank order), the common shape
// of every experiment driver.
func (c *Cluster) GoEach(name string, fn func(p *sim.Proc, nd *Node)) {
	for _, nd := range c.Nodes {
		nd := nd
		c.Eng.Go(fmt.Sprintf("%s.%d", name, nd.Index), func(p *sim.Proc) { fn(p, nd) })
	}
}

// Diagnose builds a hang diagnosis after a run that left ranks incomplete:
// the engine's blocked waiters plus every node's starved trigger entries.
// It returns nil when the simulation shows no evidence of a hang.
func (c *Cluster) Diagnose() *sim.HangError {
	var starved []sim.StarvedTrigger
	for _, nd := range c.Nodes {
		starved = append(starved, nd.NIC.StarvedTriggers()...)
	}
	return c.Eng.Diagnose(starved)
}

// StatsReport renders a per-node dump of the observability counters
// (gem5-style end-of-run statistics): NIC command/trigger activity, GPU
// dispatches, and fabric byte counts.
func (c *Cluster) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster statistics @ %v\n", c.Eng.Now())
	for _, nd := range c.Nodes {
		ns := nd.NIC.Stats()
		fmt.Fprintf(&b, "node %2d: kernels=%d nic{cmds=%d trigW=%d fires=%d dyn=%d placeholders=%d immediate=%d dropped=%d trigHW=%d} net{sent=%dB recv=%dB msgs=%d}\n",
			nd.Index, nd.GPU.KernelsLaunched(),
			ns.CommandsExecuted, ns.TriggerWrites, ns.TriggerFires, ns.DynamicFires,
			ns.PlaceholdersMade, ns.ImmediateFires, ns.DroppedTriggers, ns.TriggerListHighWater,
			c.Fabric.BytesSent(network.NodeID(nd.Index)),
			c.Fabric.BytesDelivered(network.NodeID(nd.Index)),
			c.Fabric.MessagesDelivered(network.NodeID(nd.Index)))
		if ns.CmdQueueStalls+ns.CmdDeferred+ns.RegistrationRejects+ns.FlowCtlDrops > 0 {
			fmt.Fprintf(&b, "         res{cmdStalls=%d cmdDeferred=%d rejects=%d flowCtlDrops=%d cmdqHW=%d fifoHW=%d placeholderHW=%d}\n",
				ns.CmdQueueStalls, ns.CmdDeferred, ns.RegistrationRejects, ns.FlowCtlDrops,
				ns.CmdQueueHighWater, ns.TrigFIFOHighWater, ns.PlaceholderHighWater)
		}
		if ns.Retransmits+ns.AcksSent+ns.NacksSent+ns.DupesDropped+ns.CorruptDropped+ns.PeersDeclaredDead+ns.LostTriggerWrites > 0 {
			fmt.Fprintf(&b, "         rel{retx=%d acks=%d nacks=%d dupes=%d corrupt=%d peersDead=%d lostTrig=%d}\n",
				ns.Retransmits, ns.AcksSent, ns.NacksSent, ns.DupesDropped,
				ns.CorruptDropped, ns.PeersDeclaredDead, ns.LostTriggerWrites)
		}
	}
	if c.Injector != nil {
		fs := c.Injector.Stats()
		fmt.Fprintf(&b, "%s\n", c.Injector.Summary())
		fmt.Fprintf(&b, "injected: pktDrop=%d (flap=%d) corrupt=%d delayed=%d trigDrop=%d trigDelay=%d cmdStall=%d; fabric lostMsgs=%d\n",
			fs.PacketsDropped, fs.FlapDrops, fs.PacketsCorrupted, fs.PacketsDelayed,
			fs.TriggerDrops, fs.TriggerDelays, fs.CommandStalls, c.Fabric.MessagesLost())
	}
	return b.String()
}
