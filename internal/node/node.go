// Package node composes the simulated subsystems — host CPU, GPU, RDMA NIC
// with GPU-TN trigger hardware, and the Portals-style runtime — into nodes,
// and wires nodes into a cluster over the star-topology fabric.
package node

import (
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/network"
	"repro/internal/nic"
	"repro/internal/portals"
	"repro/internal/sim"
)

// Node is one compute node: a coherent APU (CPU+GPU sharing system memory,
// §5.1) attached to an RDMA NIC.
type Node struct {
	Index int
	Eng   *sim.Engine
	Cfg   config.SystemConfig
	// Lane is the node's event lane in a lane-assigned cluster
	// (cfg.Shards ≥ 1): Index+1, with 0 reserved as the ambient lane. It is
	// 0 on the serial seed-exact path (cfg.Shards == 0).
	Lane uint32

	CPU *cpu.CPU
	GPU *gpu.GPU
	NIC *nic.NIC
	Ptl *portals.Runtime

	HostMem *memsys.Hierarchy
	GPUMem  *memsys.Hierarchy

	// procs are the simulation processes bound to this node's current
	// incarnation (spawned via Node.Go or registered with Bind); a crash
	// kills them all.
	procs []*sim.Proc
	// onRestart hooks run after the node comes back up — services
	// (heartbeat agents, recovery drivers) use them to re-establish state
	// on the fresh incarnation.
	onRestart []func(nd *Node)
}

// Go spawns a process bound to this node: it dies with the node on Crash.
// Experiment code that models software running *on* a node (rank loops,
// progress threads) should use this instead of Eng.Go so crashes take it
// down realistically.
func (nd *Node) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	p := nd.Eng.GoLane(nd.Lane, fmt.Sprintf("n%d.%s", nd.Index, name), fn)
	nd.Bind(p)
	return p
}

// Bind registers an externally spawned process as belonging to this node,
// so it is killed on Crash.
func (nd *Node) Bind(p *sim.Proc) {
	if len(nd.procs) >= 64 {
		keep := nd.procs[:0]
		for _, q := range nd.procs {
			if !q.Dead() {
				keep = append(keep, q)
			}
		}
		nd.procs = keep
	}
	nd.procs = append(nd.procs, p)
}

// OnRestart registers a hook invoked (in registration order) each time the
// node restarts after a crash.
func (nd *Node) OnRestart(fn func(nd *Node)) {
	nd.onRestart = append(nd.onRestart, fn)
}

// Down reports whether the node is crashed and not yet restarted.
func (nd *Node) Down() bool { return nd.NIC.Down() }

// Crash crash-stops the node at the current instant: every bound process
// is killed, the GPU loses its in-flight kernels and queue, and the NIC
// goes down losing trigger-list, placeholder, command-queue, and
// reliable-delivery state (see nic.Crash). Idempotent while down.
func (nd *Node) Crash() {
	if nd.NIC.Down() {
		return
	}
	for _, p := range nd.procs {
		nd.Eng.Kill(p)
	}
	nd.procs = nd.procs[:0]
	nd.GPU.Reset()
	nd.NIC.Crash()
}

// Restart brings a crashed node back cold under a new incarnation epoch.
// The caller (normally the cluster's crash plan) is responsible for
// announcing the epoch to peers; registered OnRestart hooks then rebuild
// software state on the fresh incarnation.
func (nd *Node) Restart() {
	if !nd.NIC.Down() {
		return
	}
	nd.NIC.Restart()
	for _, fn := range nd.onRestart {
		fn(nd)
	}
}

// Cluster is a set of nodes on one fabric.
type Cluster struct {
	// Eng is the primary engine — the only one on the serial path
	// (cfg.Shards == 0), shard 0 of a sharded cluster. Ambient (non-node)
	// work runs here.
	Eng *sim.Engine
	// Engines holds every engine, indexed by shard; Engines[0] == Eng.
	Engines []*sim.Engine
	// Sharded is the bounded-window coordinator driving Engines in
	// deterministic lockstep; nil when cfg.Shards == 0.
	Sharded *sim.Sharded
	Cfg     config.SystemConfig
	Fabric  network.Transport
	Nodes   []*Node
	// Injector is the cluster-wide fault injector; nil when cfg.Faults is
	// zero-valued (the lossless default).
	Injector *fault.Injector
	// Plan is the armed crash-stop/restart schedule; nil when cfg.Crash is
	// zero-valued (no crashes).
	Plan *fault.CrashPlan
	// SwitchPlan is the armed switch/trunk failure schedule; nil when
	// cfg.Faults.Switch is zero-valued (no switch failures).
	SwitchPlan *fault.SwitchPlan
	// Scenario is the composed correlated-failure scenario that was expanded
	// into the fault plans above; nil when cfg.Scenario is zero-valued.
	Scenario *fault.Scenario
	// Audit is the always-on invariant auditor threaded through the NIC,
	// fabric, health, and collective hot paths. Never nil.
	Audit *audit.Auditor

	// collectiveGen counts recover-family collective runs launched on this
	// cluster (see NextCollectiveGen).
	collectiveGen int64
	// quiescent records whether the last drive drained the event queues
	// completely (Run, not RunUntil) — the precondition for the auditor's
	// message-conservation reconciliation.
	quiescent bool
}

// NextCollectiveGen returns the next collective run generation, starting
// at 1. Recover-family runs (RunRecoverable / RunVerified / RunHedged)
// salt their landing regions and trigger tags with it so a repeat run on
// the same cluster never collides with state leaked by a predecessor —
// an aborted attempt's runner can stage its ring long after the attempt
// was abandoned (e.g. a straggler pinned in a dilated kernel), leaving
// entries the earlier run's own cleanup pass never saw.
func (c *Cluster) NextCollectiveGen() int64 {
	c.collectiveGen++
	return c.collectiveGen
}

// NewCluster builds an n-node cluster from the configuration. The
// configuration is validated; experiment drivers pass mutated presets.
// The topology is selected by cfg.Network.Topology: the Table 2 star by
// default, or a two-level tree with cfg.Network.TreeLeafSize nodes per
// leaf switch.
// serialRequired reports whether the configuration uses a feature that
// needs one global event order — heartbeat membership, crash schedules, and
// the tree topology all mutate cross-node state through direct calls, not
// fabric messages, so they cannot be split across engines. A lane-assigned
// cluster with such a feature runs on a single engine regardless of
// cfg.Shards, which keeps every shard count trivially identical.
func serialRequired(cfg *config.SystemConfig) bool {
	return cfg.Health.Enabled || cfg.Crash.Enabled() ||
		cfg.Network.Topology == config.TopologyTree ||
		cfg.Network.Topology == config.TopologyFatTree
}

func NewCluster(cfg config.SystemConfig, n int) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("node: %v", err))
	}
	if n < 1 {
		panic("node: cluster needs at least one node")
	}
	// Compose the correlated-failure scenario (if any) into the crash,
	// partition, degrade, and slow schedules BEFORE any plan or engine-layout
	// decision reads the config: an expanded crash schedule must flip
	// serialRequired exactly as a hand-written one would.
	scen, serr := fault.ApplyScenario(&cfg, n)
	if serr != nil {
		panic(fmt.Sprintf("node: %v", serr))
	}
	// Engine layout: cfg.Shards == 0 is the serial seed-exact path (one
	// engine, no lanes). cfg.Shards ≥ 1 assigns every node a lane and
	// round-robins nodes over min(Shards, n) engines — except that serial-
	// required features cap the engine count at 1.
	laned := cfg.Shards > 0
	nshards := 1
	if laned && !serialRequired(&cfg) {
		nshards = cfg.Shards
		if nshards > n {
			nshards = n
		}
	}
	eng := sim.NewEngine()
	engines := []*sim.Engine{eng}
	var sharded *sim.Sharded
	if laned {
		for k := 1; k < nshards; k++ {
			engines = append(engines, sim.NewEngine())
		}
		sharded = sim.NewSharded(engines, network.Lookahead(cfg.Network))
	}
	engOf := func(i int) *sim.Engine { return engines[i%len(engines)] }
	laneOf := func(i int) uint32 {
		if !laned {
			return 0
		}
		return uint32(i + 1)
	}

	var fab network.Transport
	switch cfg.Network.Topology {
	case config.TopologyStar, "":
		star := network.NewFabric(eng, cfg.Network, n)
		if laned {
			engTab := make([]*sim.Engine, n)
			laneTab := make([]uint32, n)
			for i := 0; i < n; i++ {
				engTab[i], laneTab[i] = engOf(i), laneOf(i)
			}
			star.SetSharding(sharded, engTab, laneTab)
		}
		fab = star
	case config.TopologyTree:
		// serialRequired keeps tree clusters on one engine; flights inherit
		// the sender's lane, which is deterministic on a single engine.
		fab = network.NewTreeFabric(eng, cfg.Network, n, cfg.Network.TreeLeafSize)
	case config.TopologyFatTree:
		// Like the tree, the fat-tree's shared switch ports force a single
		// engine (serialRequired), so every shard count runs identically.
		fab = network.NewFatTree(eng, cfg.Network, n)
	default:
		panic(fmt.Sprintf("node: unknown topology %q", cfg.Network.Topology))
	}
	inj := fault.NewInjector(cfg.Faults)
	if laned {
		// Lane-assigned clusters draw fault verdicts on the deciding node's
		// engine, so every verdict stream and counter must be per-node.
		inj.Shard(n)
	}
	fab.SetInjector(inj)
	au := audit.New(n)
	if ft, ok := fab.(*network.FatTree); ok {
		au.RegisterHops(ft.SwitchCount())
	}
	fab.SetAuditor(au)
	c := &Cluster{Eng: eng, Engines: engines, Sharded: sharded, Cfg: cfg, Fabric: fab, Injector: inj, Scenario: scen, Audit: au}
	for i := 0; i < n; i++ {
		e := engOf(i)
		// Bracket construction with the node's lane: the NIC's service
		// processes and any setup events spawned here must be born on (and
		// execute under) the node's lane, not the ambient one.
		e.SetLane(laneOf(i))
		hostMem := memsys.FromCPU(cfg.CPU)
		gpuMem := memsys.FromGPU(cfg.GPU, cfg.CPU)
		nc := nic.New(e, cfg.NIC, network.NodeID(i), fab)
		nc.SetInjector(inj)
		nc.SetAuditor(au)
		if cfg.DiscreteGPU {
			nc.SetIOBusLatency(cfg.IOBusLatency)
		}
		nd := &Node{
			Index:   i,
			Eng:     e,
			Lane:    laneOf(i),
			Cfg:     cfg,
			CPU:     cpu.New(e, cfg.CPU, hostMem),
			GPU:     gpu.New(e, cfg.GPU, gpuMem),
			NIC:     nc,
			Ptl:     portals.Init(e, nc, i, n),
			HostMem: hostMem,
			GPUMem:  gpuMem,
		}
		if slow := inj.Slow(); slow.AffectsGPU(i) {
			// Fail-slow GPU class: dilate every Compute on this node. The
			// hook is installed once and survives GPU.Reset — a restarted
			// straggler is still a straggler until its window closes.
			idx := i
			nd.GPU.SetDilation(func(d sim.Time) sim.Time {
				return slow.GPUDilate(e.Now(), idx, d)
			})
		}
		c.Nodes = append(c.Nodes, nd)
		e.SetLane(0)
	}
	if plan := fault.NewCrashPlan(cfg.Crash); plan != nil {
		c.Plan = plan
		plan.Arm(eng, c.CrashNode, c.RestartNode)
	}
	if plan := fault.NewSwitchPlan(cfg.Faults.Switch); plan != nil {
		ft, ok := fab.(*network.FatTree)
		if !ok {
			// Validate() rejects switch events on non-fat-tree topologies.
			panic("node: switch plan without a fat-tree fabric")
		}
		c.SwitchPlan = plan
		plan.Arm(eng, ft.KillSwitch, ft.RestoreSwitch, ft.KillTrunk, ft.RestoreTrunk)
	}
	return c
}

// CrashNode crash-stops one node and propagates link-down to every
// surviving peer: their reliability layers declare the node dead with
// reason PeerDeadCrash immediately, so blocked collectives abort instead
// of burning retry budgets.
func (c *Cluster) CrashNode(i int) {
	nd := c.Nodes[i]
	if nd.Down() {
		return
	}
	nd.Crash()
	for _, other := range c.Nodes {
		if other.Index != i && !other.NIC.Down() {
			other.NIC.MarkPeerCrashed(network.NodeID(i))
		}
	}
}

// RestartNode restarts a crashed node cold: the NIC comes back under a new
// incarnation epoch, which is announced to every peer (stopping stale
// retransmits against the dead incarnation), and OnRestart hooks rebuild
// the node's software state.
func (c *Cluster) RestartNode(i int) {
	nd := c.Nodes[i]
	if !nd.Down() {
		return
	}
	nd.Restart()
	for _, other := range c.Nodes {
		if other.Index != i {
			nd.NIC.AnnounceEpoch(network.NodeID(other.Index))
		}
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// Run drives the simulation until the event queues drain — through the
// bounded-window coordinator on a sharded cluster, directly otherwise.
func (c *Cluster) Run() {
	if c.Sharded != nil {
		c.Sharded.Run()
	} else {
		c.Eng.Run()
	}
	c.quiescent = true
}

// RunUntil drives the simulation to the deadline. Messages legitimately
// stranded in flight at the cutoff exempt the run from the auditor's full
// conservation reconciliation (over-delivery is still checked).
func (c *Cluster) RunUntil(t sim.Time) {
	if c.Sharded != nil {
		c.Sharded.RunUntil(t)
	} else {
		c.Eng.RunUntil(t)
	}
	c.quiescent = false
}

// GoRank spawns the driver process for one rank's software, pinned to the
// rank's engine and lane. Collective and workload drivers must use it (or
// Node.Go) rather than Eng.Go, so a sharded cluster runs each rank's loop on
// the engine owning its node.
func (c *Cluster) GoRank(i int, name string, fn func(p *sim.Proc)) *sim.Proc {
	nd := c.Nodes[i]
	return nd.Eng.GoLane(nd.Lane, name, fn)
}

// GoEach spawns one host process per node (rank order), the common shape
// of every experiment driver.
func (c *Cluster) GoEach(name string, fn func(p *sim.Proc, nd *Node)) {
	for _, nd := range c.Nodes {
		nd := nd
		c.GoRank(nd.Index, fmt.Sprintf("%s.%d", name, nd.Index), func(p *sim.Proc) { fn(p, nd) })
	}
}

// Diagnose builds a hang diagnosis after a run that left ranks incomplete:
// the engine's blocked waiters plus every node's starved trigger entries.
// It returns nil when the simulation shows no evidence of a hang.
func (c *Cluster) Diagnose() *sim.HangError {
	var starved []sim.StarvedTrigger
	var crashed []sim.CrashedNode
	for _, nd := range c.Nodes {
		if nd.NIC.Down() {
			// A crashed-and-never-restarted node is its own hang cause; its
			// trigger list died with it, so it contributes no starved entries.
			crashed = append(crashed, sim.CrashedNode{Node: nd.Index, At: nd.NIC.DownSince()})
			continue
		}
		starved = append(starved, nd.NIC.StarvedTriggers()...)
	}
	he := sim.DiagnoseAll(c.Engines, starved)
	if he != nil {
		he.Crashed = crashed
		he.Partitions = c.unhealedPartitions()
		if ft, ok := c.Fabric.(*network.FatTree); ok && ft.Unrouteable() > 0 {
			total := ft.Unrouteable()
			for _, s := range ft.UnroutedSamples() {
				he.Unrouteable = append(he.Unrouteable, sim.Unrouteable{
					Src: int(s.Src), Dst: int(s.Dst), At: s.At, Reason: s.Reason, Drops: total,
				})
			}
		}
		if len(he.Starved) == 0 && len(crashed) == 0 {
			// Nothing starved, nothing crashed: the stall pattern of a
			// fail-slow rank. Name the up node with the least NIC progress
			// as the suspect.
			for _, nd := range c.Nodes {
				wm := nd.NIC.Stats().CommandsExecuted
				if he.MinProgress == nil || wm < he.MinProgress.Watermark {
					he.MinProgress = &sim.RankProgress{Rank: nd.Index, Watermark: wm}
				}
			}
		}
	}
	return he
}

// unhealedPartitions converts the injector's still-in-force, never-healing
// cuts into the watchdog's sim-local type (sim cannot import fault). An
// empty B side in the schedule means "everyone else"; the diagnosis
// materializes it so the error names both sides.
func (c *Cluster) unhealedPartitions() []sim.UnhealedPartition {
	var out []sim.UnhealedPartition
	for _, u := range c.Injector.Partitions().Unhealed(c.Eng.Now()) {
		b := u.B
		if len(b) == 0 {
			inA := make(map[int]bool, len(u.A))
			for _, n := range u.A {
				inA[n] = true
			}
			for i := range c.Nodes {
				if !inA[i] {
					b = append(b, i)
				}
			}
		}
		out = append(out, sim.UnhealedPartition{A: u.A, B: b, At: u.At, Asymmetric: u.Asymmetric})
	}
	return out
}

// StatsReport renders a per-node dump of the observability counters
// (gem5-style end-of-run statistics): NIC command/trigger activity, GPU
// dispatches, and fabric byte counts.
func (c *Cluster) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster statistics @ %v\n", c.Eng.Now())
	for _, nd := range c.Nodes {
		ns := nd.NIC.Stats()
		fmt.Fprintf(&b, "node %2d: kernels=%d nic{cmds=%d trigW=%d fires=%d dyn=%d placeholders=%d immediate=%d dropped=%d trigHW=%d} net{sent=%dB recv=%dB msgs=%d}\n",
			nd.Index, nd.GPU.KernelsLaunched(),
			ns.CommandsExecuted, ns.TriggerWrites, ns.TriggerFires, ns.DynamicFires,
			ns.PlaceholdersMade, ns.ImmediateFires, ns.DroppedTriggers, ns.TriggerListHighWater,
			c.Fabric.BytesSent(network.NodeID(nd.Index)),
			c.Fabric.BytesDelivered(network.NodeID(nd.Index)),
			c.Fabric.MessagesDelivered(network.NodeID(nd.Index)))
		if ns.CmdQueueStalls+ns.CmdDeferred+ns.RegistrationRejects+ns.FlowCtlDrops > 0 {
			fmt.Fprintf(&b, "         res{cmdStalls=%d cmdDeferred=%d rejects=%d flowCtlDrops=%d cmdqHW=%d fifoHW=%d placeholderHW=%d}\n",
				ns.CmdQueueStalls, ns.CmdDeferred, ns.RegistrationRejects, ns.FlowCtlDrops,
				ns.CmdQueueHighWater, ns.TrigFIFOHighWater, ns.PlaceholderHighWater)
		}
		if ns.Retransmits+ns.AcksSent+ns.NacksSent+ns.DupesDropped+ns.CorruptDropped+ns.PeersDeclaredDead+ns.LostTriggerWrites > 0 {
			fmt.Fprintf(&b, "         rel{retx=%d acks=%d nacks=%d dupes=%d corrupt=%d peersDead=%d lostTrig=%d}\n",
				ns.Retransmits, ns.AcksSent, ns.NacksSent, ns.DupesDropped,
				ns.CorruptDropped, ns.PeersDeclaredDead, ns.LostTriggerWrites)
		}
		if ns.PeersDeclaredPartitioned+ns.PeersHealed+ns.SessionResets+ns.StaleSessionDrops > 0 {
			fmt.Fprintf(&b, "         part{peersPart=%d healed=%d sessResets=%d staleSess=%d rttSamples=%d}\n",
				ns.PeersDeclaredPartitioned, ns.PeersHealed, ns.SessionResets, ns.StaleSessionDrops, ns.RTTSamples)
		}
		if ns.Crashes+ns.Restarts+ns.DownDrops+ns.StaleSrcDrops+ns.StaleDstDrops+ns.EpochResets+
			ns.FencedCommands+ns.FencedTriggers+ns.FencedDeliveries+ns.PeersDeclaredCrashed > 0 {
			fmt.Fprintf(&b, "         crash{crashes=%d restarts=%d inc=%d downDrops=%d staleSrc=%d staleDst=%d epochResets=%d fencedCmds=%d fencedTrig=%d fencedDeliv=%d peersCrashed=%d}\n",
				ns.Crashes, ns.Restarts, nd.NIC.Incarnation(), ns.DownDrops, ns.StaleSrcDrops, ns.StaleDstDrops,
				ns.EpochResets, ns.FencedCommands, ns.FencedTriggers, ns.FencedDeliveries, ns.PeersDeclaredCrashed)
		}
		if ns.E2EChecksumFails+ns.SDCDetected+ns.SDCUndetected+ns.PeersDeclaredCorrupt > 0 {
			fmt.Fprintf(&b, "         integ{e2eFails=%d sdcDetected=%d sdcEscaped=%d peersQuarantined=%d linkCorrupt=%d}\n",
				ns.E2EChecksumFails, ns.SDCDetected, ns.SDCUndetected, ns.PeersDeclaredCorrupt, ns.CorruptDropped)
		}
		if ns.SlowCmdStretched+ns.SlowCmdStalls+ns.SlowDMAStretched+ns.PeersDeclaredSlow+ns.SlowRecoveries+ns.HedgedSends > 0 {
			fmt.Fprintf(&b, "         slow{cmdStretch=%d cmdStalls=%d dmaStretch=%d peersSlow=%d recovered=%d hedged=%d maxSlowdown=%.2fx}\n",
				ns.SlowCmdStretched, ns.SlowCmdStalls, ns.SlowDMAStretched,
				ns.PeersDeclaredSlow, ns.SlowRecoveries, ns.HedgedSends,
				float64(ns.MaxSlowdownSeen)/100)
		}
		if ns.ECNMarksSeen+ns.ECNEchoed+ns.ECNBackoffs > 0 {
			fmt.Fprintf(&b, "         ecn{marksSeen=%d echoed=%d backoffs=%d}\n",
				ns.ECNMarksSeen, ns.ECNEchoed, ns.ECNBackoffs)
		}
	}
	if c.Scenario != nil {
		fmt.Fprintf(&b, "%s\n", c.Scenario.Summary())
	}
	if c.Plan != nil {
		fmt.Fprintf(&b, "%s\n", c.Plan.Summary())
	}
	if c.SwitchPlan != nil {
		fmt.Fprintf(&b, "%s\n", c.SwitchPlan.Summary())
	}
	if ft, ok := c.Fabric.(*network.FatTree); ok {
		fmt.Fprintf(&b, "fattree: switchDrops=%d ecnMarks=%d unrouteable=%d\n",
			ft.SwitchDrops(), ft.ECNMarks(), ft.Unrouteable())
	}
	if c.Injector != nil {
		fs := c.Injector.Stats()
		fmt.Fprintf(&b, "%s\n", c.Injector.Summary())
		fmt.Fprintf(&b, "injected: pktDrop=%d (flap=%d) corrupt=%d delayed=%d trigDrop=%d trigDelay=%d cmdStall=%d; fabric lostMsgs=%d\n",
			fs.PacketsDropped, fs.FlapDrops, fs.PacketsCorrupted, fs.PacketsDelayed,
			fs.TriggerDrops, fs.TriggerDelays, fs.CommandStalls, c.Fabric.MessagesLost())
		if fs.PartitionDrops+fs.DegradeDrops+fs.DegradeSlowed > 0 {
			fmt.Fprintf(&b, "degraded: partDrop=%d degradeDrop=%d degradeSlow=%d\n",
				fs.PartitionDrops, fs.DegradeDrops, fs.DegradeSlowed)
		}
		if ss := c.Injector.SDC().Stats(); ss.Total() > 0 {
			fmt.Fprintf(&b, "sdc injected: wire=%d buffer=%d reducer=%d\n",
				ss.WireCorruptions, ss.BufferCorruptions, ss.ReducerCorruptions)
		}
		if ws := c.Injector.Slow().Stats(); ws.Total() > 0 {
			fmt.Fprintf(&b, "slow injected: gpuDilations=%d cmdStretched=%d cmdStalls=%d dmaStretched=%d\n",
				ws.GPUDilations, ws.CmdStretched, ws.CmdStalls, ws.DMAStretched)
		}
	}
	c.Audit.Finish(c.Eng.Now(), c.quiescent)
	fmt.Fprintf(&b, "%s\n", c.Audit.Report())
	return b.String()
}
