package node

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/portals"
	"repro/internal/sim"
)

// newTriggerKernel builds a one-work-group kernel that fences to system
// scope and writes the tag to the trigger address (Figure 7c shape).
func newTriggerKernel(trig portals.TriggerAddr, tag uint64) *gpu.Kernel {
	return &gpu.Kernel{
		Name:       "trigger",
		WorkGroups: 1,
		Body: func(wg *gpu.WGCtx) {
			wg.Compute(100 * sim.Nanosecond) // produce the payload
			wg.FenceSystem()
			wg.AtomicStoreSystem(func() { trig.Write(tag) })
		},
	}
}

func TestNewClusterWiring(t *testing.T) {
	c := NewCluster(config.Default(), 4)
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	for i, nd := range c.Nodes {
		if nd.Index != i {
			t.Errorf("node %d has index %d", i, nd.Index)
		}
		if nd.Ptl.Rank() != i || nd.Ptl.Size() != 4 {
			t.Errorf("node %d portals rank/size = %d/%d", i, nd.Ptl.Rank(), nd.Ptl.Size())
		}
		if nd.CPU == nil || nd.GPU == nil || nd.NIC == nil || nd.HostMem == nil || nd.GPUMem == nil {
			t.Errorf("node %d has nil subsystem", i)
		}
	}
}

func TestNewClusterValidates(t *testing.T) {
	bad := config.Default()
	bad.CPU.Cores = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad config")
		}
	}()
	NewCluster(bad, 2)
}

func TestNewClusterMinimumSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero nodes")
		}
	}()
	NewCluster(config.Default(), 0)
}

func TestEndToEndPutAcrossCluster(t *testing.T) {
	// Integration: rank 0's GPU triggers a pre-registered put to rank 1,
	// crossing every composed subsystem.
	c := NewCluster(config.Default(), 2)
	n0, n1 := c.Nodes[0], c.Nodes[1]
	recvCT := n1.Ptl.CTAlloc()
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 1 << 20, CT: recvCT})

	var recvAt sim.Time
	c.Eng.Go("host0", func(p *sim.Proc) {
		md := n0.Ptl.MDBind("buf", 64, "data", nil)
		if err := n0.Ptl.TrigPut(p, 1, 1, md, 64, 1, 0x1); err != nil {
			t.Error(err)
		}
		trig := n0.Ptl.GetTriggerAddr()
		n0.GPU.LaunchSync(p, newTriggerKernel(trig, 1))
	})
	c.Eng.Go("host1", func(p *sim.Proc) {
		recvCT.Wait(p, 1)
		recvAt = p.Now()
	})
	c.Run()
	if recvCT.Value() != 1 {
		t.Fatal("put never arrived")
	}
	// Intra-kernel property: data arrives before initiator kernel teardown
	// would finish (launch 1.5us + trigger + wire < 3us + wire).
	if recvAt <= 1500*sim.Nanosecond || recvAt >= 3500*sim.Nanosecond {
		t.Fatalf("recvAt = %v outside plausible intra-kernel window", recvAt)
	}
}

func TestDiscreteGPUAddsIOBusHop(t *testing.T) {
	measure := func(cfg config.SystemConfig) sim.Time {
		c := NewCluster(cfg, 2)
		n0, n1 := c.Nodes[0], c.Nodes[1]
		recvCT := n1.Ptl.CTAlloc()
		n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 1 << 20, CT: recvCT})
		var recvAt sim.Time
		c.Eng.Go("host0", func(p *sim.Proc) {
			md := n0.Ptl.MDBind("buf", 64, nil, nil)
			if err := n0.Ptl.TrigPut(p, 1, 1, md, 64, 1, 0x1); err != nil {
				t.Error(err)
			}
			n0.Ptl.GetTriggerAddr().Write(1)
		})
		c.Eng.Go("host1", func(p *sim.Proc) {
			recvCT.Wait(p, 1)
			recvAt = p.Now()
		})
		c.Run()
		return recvAt
	}
	apu := measure(config.Default())
	disc := config.Default()
	disc.DiscreteGPU = true
	disc.IOBusLatency = 500 * sim.Nanosecond
	if d := measure(disc) - apu; d < 500*sim.Nanosecond {
		t.Fatalf("discrete hop added only %v", d)
	}
}

func TestGoEachSpawnsAllRanks(t *testing.T) {
	c := NewCluster(config.Default(), 3)
	seen := map[int]bool{}
	c.GoEach("t", func(p *sim.Proc, nd *Node) { seen[nd.Index] = true })
	c.Run()
	if len(seen) != 3 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRunUntilAdvances(t *testing.T) {
	c := NewCluster(config.Default(), 1)
	c.RunUntil(5 * sim.Microsecond)
	if c.Eng.Now() != 5*sim.Microsecond {
		t.Fatalf("Now = %v", c.Eng.Now())
	}
}

func TestStatsReport(t *testing.T) {
	c := NewCluster(config.Default(), 2)
	n0, n1 := c.Nodes[0], c.Nodes[1]
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 64})
	c.Eng.Go("h", func(p *sim.Proc) {
		md := n0.Ptl.MDBind("b", 64, nil, nil)
		n0.Ptl.Put(p, md, 64, 1, 0x1)
	})
	c.Run()
	out := c.StatsReport()
	for _, want := range []string{"node  0", "node  1", "cmds=1", "sent=64B"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// A fault-free cluster has no injector and no fault lines in the report.
	if c.Injector != nil {
		t.Error("fault-free cluster built an injector")
	}
	for _, absent := range []string{"rel{", "injected:"} {
		if strings.Contains(out, absent) {
			t.Errorf("fault-free report contains %q:\n%s", absent, out)
		}
	}
}

func TestClusterWiresInjectorAndReportsFaults(t *testing.T) {
	cfg := config.Default()
	cfg.Faults = config.FaultConfig{Seed: 2, DropProb: 0.3}
	cfg.NIC.Reliability = config.DefaultReliability()
	c := NewCluster(cfg, 2)
	if c.Injector == nil {
		t.Fatal("armed faults built no injector")
	}
	n0, n1 := c.Nodes[0], c.Nodes[1]
	ct := n1.Ptl.CTAlloc()
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 1 << 20, CT: ct})
	c.Eng.Go("h", func(p *sim.Proc) {
		md := n0.Ptl.MDBind("b", 2<<10, nil, nil)
		for i := 0; i < 8; i++ {
			n0.Ptl.Put(p, md, 2<<10, 1, 0x1)
		}
		ct.Wait(p, 8)
	})
	c.Run()
	if ct.Value() != 8 {
		t.Fatalf("delivered %d/8 despite reliability", ct.Value())
	}
	out := c.StatsReport()
	for _, want := range []string{"faults: seed=2 drop=30.00%", "injected: pktDrop=", "rel{retx="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTreeTopologyCluster(t *testing.T) {
	cfg := config.Default()
	cfg.Network.Topology = config.TopologyTree
	cfg.Network.TreeLeafSize = 2
	c := NewCluster(cfg, 4)
	n0, n3 := c.Nodes[0], c.Nodes[3]
	ct := n3.Ptl.CTAlloc()
	n3.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 64, CT: ct})
	c.Eng.Go("h", func(p *sim.Proc) {
		md := n0.Ptl.MDBind("b", 64, nil, nil)
		n0.Ptl.Put(p, md, 64, 3, 0x1)
		ct.Wait(p, 1)
	})
	c.Run()
	if ct.Value() != 1 {
		t.Fatal("cross-leaf put never delivered")
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	cfg := config.Default()
	cfg.Network.Topology = "mesh"
	defer func() {
		if recover() == nil {
			t.Error("unknown topology accepted")
		}
	}()
	NewCluster(cfg, 2)
}

// A crash takes down the node's bound processes and the hang doctor names
// the crashed-and-never-restarted node as the likely cause.
func TestDiagnoseNamesCrashedNode(t *testing.T) {
	cfg := config.Default()
	cfg.Crash = config.CrashConfig{Events: []config.CrashEvent{
		{Node: 1, At: 5 * sim.Microsecond},
	}}
	c := NewCluster(cfg, 3)
	n1 := c.Nodes[1]
	ct := n1.Ptl.CTAlloc()
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 64, CT: ct})
	// A survivor waits forever on a delivery only the crashed node's rank
	// loop would have produced.
	c.Eng.Go("waiter", func(p *sim.Proc) {
		sim.NewCounter(c.Eng).WaitGE(p, 1)
	})
	victimRan := false
	n1.Go("rank1", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // killed by the crash long before this
		victimRan = true
	})
	c.Run()
	if victimRan {
		t.Fatal("node-bound process survived the crash")
	}
	if !n1.Down() {
		t.Fatal("node 1 not down")
	}
	he := c.Diagnose()
	if he == nil {
		t.Fatal("no hang diagnosis despite a parked waiter")
	}
	if len(he.Crashed) != 1 || he.Crashed[0].Node != 1 {
		t.Fatalf("diagnosis crashed list = %v, want node 1", he.Crashed)
	}
	msg := he.Error()
	if !strings.Contains(msg, "crashed and never restarted") || !strings.Contains(msg, "node 1") {
		t.Fatalf("diagnosis does not name the crashed node: %s", msg)
	}
}

// RestartNode announces the new epoch to every peer and replays OnRestart
// hooks; CrashNode propagates an immediate crash verdict into survivors.
func TestCrashRestartClusterPropagation(t *testing.T) {
	cfg := config.Default()
	cfg.NIC.Reliability = config.DefaultReliability()
	c := NewCluster(cfg, 3)
	hooks := 0
	c.Nodes[1].OnRestart(func(*Node) { hooks++ })
	c.Eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		c.CrashNode(1)
		c.CrashNode(1) // idempotent
		for _, nd := range c.Nodes {
			if nd.Index == 1 {
				continue
			}
			if info, ok := nd.NIC.PeerDeadDetail(1); !ok || info.Reason.String() != "peer crashed" {
				t.Errorf("node %d did not get the crash verdict: %v %v", nd.Index, info, ok)
			}
		}
		p.Sleep(5 * sim.Microsecond)
		c.RestartNode(1)
		c.RestartNode(1) // idempotent
	})
	c.Run()
	if hooks != 1 {
		t.Fatalf("OnRestart hooks ran %d times, want 1", hooks)
	}
	if inc := c.Nodes[1].NIC.Incarnation(); inc != 2 {
		t.Fatalf("incarnation = %d, want 2", inc)
	}
	for _, nd := range c.Nodes {
		if nd.Index == 1 {
			continue
		}
		if nd.NIC.Stats().EpochResets == 0 {
			t.Fatalf("node %d never adopted node 1's new epoch", nd.Index)
		}
	}
}
