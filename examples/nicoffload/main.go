// NIC-offloaded collective: the libNBC pattern the paper builds on
// (§5.4.1) taken to its logical end. A ring allgather's schedule is
// converted wholesale into chained Portals triggered operations: every
// send is gated on the count of preceding receives, the host registers
// everything up front and goes idle, and the NIC progresses the entire
// collective autonomously — "collective operations were one of the
// original motivations for the introduction of triggered network
// semantics" (§5.4.1, citing Underwood et al.).
package main

import (
	"fmt"
	"log"

	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/nic"
	"repro/internal/node"
	"repro/internal/sim"
)

type blockMsg struct {
	block int
	vals  []float32
}

func main() {
	const n = 6
	const blockElems = 128
	cluster := node.NewCluster(config.Default(), n)

	// Per-rank block store: rank i starts with only block i.
	blocks := make([][][]float32, n)
	nbcs := make([]*collective.NBC, n)
	for i := 0; i < n; i++ {
		blocks[i] = make([][]float32, n)
		blocks[i][i] = make([]float32, blockElems)
		for j := range blocks[i][i] {
			blocks[i][i][j] = float32(i)
		}
		nbcs[i] = collective.NewNBC(cluster.Nodes[i], 0x0FF)
		ii := i
		nbcs[i].OnDelivery = func(d nic.Delivery) {
			msg := d.Data.(blockMsg)
			blocks[ii][msg.block] = msg.vals
		}
	}

	for i := 0; i < n; i++ {
		i := i
		cluster.Eng.Go(fmt.Sprintf("host%d", i), func(p *sim.Proc) {
			sched, err := collective.AllgatherSchedule(i, n, blockElems*4, 0x0FF, func(block int) any {
				return blockMsg{block: block, vals: blocks[i][block]}
			})
			if err != nil {
				log.Fatal(err)
			}
			req, err := nbcs[i].Offload(p, sched)
			if err != nil {
				log.Fatal(err)
			}
			registered := p.Now()
			req.Wait(p)
			if i == 0 {
				fmt.Printf("rank 0: host registered the whole schedule by %v,\n", registered)
				fmt.Printf("        NIC finished the collective at %v — host idle in between\n", p.Now())
			}
		})
	}
	cluster.Run()

	// Verify: every rank holds every block.
	for i := 0; i < n; i++ {
		for b := 0; b < n; b++ {
			if len(blocks[i][b]) != blockElems || blocks[i][b][0] != float32(b) {
				log.Fatalf("rank %d missing block %d", i, b)
			}
		}
	}
	fmt.Printf("verified: all %d ranks hold all %d blocks\n", n, n)
	fmt.Print(cluster.StatsReport())
}
