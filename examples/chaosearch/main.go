// Correlated chaos end to end: a whole rack fails at once — every node
// in it crashes AND the rack is cut from the fabric — then heals as a
// jittered restart storm, while the always-on invariant auditor watches
// trigger-once, epoch monotonicity, stale-delivery fencing, message
// conservation, single-majority membership, and exact reduction.
//
// Act 1 runs the honest protocol through the rack failure: the ring
// heals over the dead rack, the restart storm rejoins, the sum is exact,
// and the auditor stays silent over thousands of checks.
//
// Act 2 arms a seeded protocol bug (a restarted incarnation replays a
// triggered op it already fired — the classic crash-recovery double-fire)
// and reruns the identical scenario: the auditor catches it as a
// trigger-once violation with the offending registration named.
//
// Act 3 is the shrinking search's inner loop in miniature: greedy
// descent deletes domains and events, rounds times, and zeroes fields,
// keeping each candidate only if it still reproduces the violation. The
// three-node rack failure shrinks to a one-node crash, emitted as a
// -scenario-* flag line anyone can paste after `gputn-bench -exp
// chaossearch -chaos-replay` to replay the minimized reproducer.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
)

func scenario() config.ScenarioConfig {
	return config.ScenarioConfig{
		Seed: 7,
		Domains: []config.ScenarioDomain{
			{Name: "rack0", Nodes: []int{0, 1, 2}},
		},
		Events: []config.ScenarioEvent{{
			Kind:   config.ScenarioRackFail,
			Domain: "rack0",
			At:     70 * sim.Microsecond,
			Heal:   60 * sim.Microsecond,
			Jitter: 10 * sim.Microsecond,
		}},
	}
}

func main() {
	cfg := config.Default()
	sc := scenario()
	plan, err := fault.ApplyScenario(&config.SystemConfig{Scenario: sc}, 8)
	if err != nil {
		log.Fatalf("scenario rejected: %v", err)
	}
	fmt.Println(plan.Summary())

	// Act 1: the honest protocol under a whole-rack failure.
	honest := bench.RunChaosScenario(cfg, sc, backends.GPUTN, "")
	if !honest.Completed || honest.RunErr != nil {
		log.Fatalf("honest run did not complete: %v", honest.RunErr)
	}
	if !honest.Clean() {
		log.Fatalf("honest run tripped the auditor: %v", honest.Violations)
	}
	fmt.Printf("\nhonest GPU-TN run: completed, %d invariant checks, auditor silent\n",
		honest.Checks)

	// Act 2: the same scenario with the seeded double-fire bug armed.
	buggy := bench.RunChaosScenario(cfg, sc, backends.GPUTN, bench.InjectDoubleFire)
	if buggy.Clean() {
		log.Fatal("seeded double-fire escaped the auditor")
	}
	fmt.Printf("\nwith the seeded double-fire bug, the identical scenario trips:\n")
	for _, v := range buggy.Violations {
		fmt.Printf("  VIOLATION %v\n", v)
	}
	check := buggy.Violations[0].Check

	// Act 3: greedy shrink to a minimal replayable reproducer.
	minimized, runs := bench.ShrinkChaos(cfg, sc, backends.GPUTN,
		bench.InjectDoubleFire, check)
	replay := bench.RunChaosScenario(cfg, minimized, backends.GPUTN,
		bench.InjectDoubleFire)
	reproduced := false
	for _, v := range replay.Violations {
		reproduced = reproduced || v.Check == check
	}
	if !reproduced {
		log.Fatalf("minimized scenario no longer reproduces %q", check)
	}
	mp, err := fault.ApplyScenario(&config.SystemConfig{Scenario: minimized}, 8)
	if err != nil {
		log.Fatalf("minimized scenario rejected: %v", err)
	}
	fmt.Printf("\nshrunk in %d reproduce runs to: %s\n", runs, mp.Summary())
	fmt.Printf("replay with:\n  gputn-bench %s\n",
		bench.ReplayFlags(minimized, bench.InjectDoubleFire))

	fmt.Println("\nThe honest protocol survives a correlated rack failure with the")
	fmt.Println("auditor silent; the moment a real invariant breaks, the always-on")
	fmt.Println("checks name it, and the shrinker hands back the smallest scenario")
	fmt.Println("that still does — a one-line reproducer instead of a chaos log.")
}
