// Ring Allreduce: the collective of Figure 2 / §5.4.1 on a cluster of
// GPU nodes, comparing all four evaluated backends. The GPU-TN version
// executes the *entire* collective inside one persistent kernel: every
// round's send is a pre-registered triggered put fired by a tag store, and
// the kernel polls a counting event to learn when the neighbour's chunk
// has landed.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/node"
)

func main() {
	const nodesN = 8
	const elems = 4096

	// Real per-rank vectors so we can verify the reduction end to end.
	data := make([][]float32, nodesN)
	want := make([]float32, elems)
	for r := range data {
		data[r] = make([]float32, elems)
		for i := range data[r] {
			data[r][i] = float32((r*7 + i) % 23)
			want[i] += data[r][i]
		}
	}

	fmt.Printf("ring Allreduce, %d nodes, %d fp32 elements per rank\n\n", nodesN, elems)
	for _, kind := range backends.All() {
		cluster := node.NewCluster(config.Default(), nodesN)
		res, err := collective.Run(cluster, collective.Config{
			Kind:       kind,
			TotalBytes: elems * 4,
			Data:       data,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Every rank must hold the exact element-wise sum.
		for r := 0; r < nodesN; r++ {
			for i := range want {
				if res.Output[r][i] != want[i] {
					log.Fatalf("%s: rank %d elem %d: got %v want %v",
						kind, r, i, res.Output[r][i], want[i])
				}
			}
		}
		fmt.Printf("%-7s completed in %9v  (all %d ranks verified)\n", kind, res.Duration, nodesN)
	}

	fmt.Println("\nStrong-scale this (more nodes, same payload) and the kernel-boundary")
	fmt.Println("backends fall behind: run `gputn-allreduce -sweep` for Figure 10.")
}
