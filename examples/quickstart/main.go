// Quickstart: one GPU-triggered put between two nodes.
//
// This walks the full Figure 6 host flow — initialize the runtime, stage a
// triggered put on the NIC, fetch the trigger address, launch a kernel —
// and the Figure 7c kernel flow: the kernel produces data, then fires the
// pre-registered network operation from *inside* the kernel with a single
// memory-mapped tag store. Watch the timestamps: the payload lands on the
// target before the initiator kernel has finished tearing down.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/node"
	"repro/internal/portals"
	"repro/internal/sim"
)

func main() {
	// Two nodes on the Table 2 fabric.
	cluster := node.NewCluster(config.Default(), 2)
	initiator, target := cluster.Nodes[0], cluster.Nodes[1]

	// Target: expose a landing region with a counting event (§4.2.5).
	recvCT := target.Ptl.CTAlloc()
	target.Ptl.MEAppend(&portals.ME{
		MatchBits: 0xCAFE,
		Length:    4096,
		CT:        recvCT,
	})
	cluster.Eng.Go("target", func(p *sim.Proc) {
		recvCT.Wait(p, 1)
		fmt.Printf("[%8v] target: payload arrived\n", p.Now())
	})

	// Initiator host (Figure 6).
	cluster.Eng.Go("initiator", func(p *sim.Proc) {
		host := core.NewHost(cluster.Eng, initiator.Ptl, initiator.GPU)
		comp := host.NewCompletion()

		// 1. Bind the send buffer and register the triggered operation:
		//    tag 42, threshold 1 — one tag write fires the put.
		buf := host.Portals().MDBind("sendbuf", 4096, "hello from the GPU", comp.CT)
		if err := host.TrigPut(p, 42, 1, buf, 4096, target.Index, 0xCAFE); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] host: triggered put registered with the NIC\n", p.Now())

		// 2. Fetch the trigger address and launch the kernel with it.
		trig := host.GetTriggerAddr()
		kern := &gpu.Kernel{
			Name:       "produce-and-send",
			WorkGroups: 4,
			Body: func(wg *gpu.WGCtx) {
				wg.Compute(300 * sim.Nanosecond) // produce the payload
				if wg.Group == 0 {
					fmt.Printf("[%8v] kernel: data ready, triggering NIC\n", wg.Now())
				}
				// All four work-groups contribute; the NIC fires once the
				// counter reaches the threshold... here threshold is 1, so
				// the leader work-group alone triggers (Figure 7c would use
				// threshold = NumGroups).
				if wg.Group == 0 {
					core.TriggerKernel(wg, trig, 42)
					comp.WaitGPU(wg, 1) // send buffer reusable (§4.2.4)
					fmt.Printf("[%8v] kernel: local completion observed in-kernel\n", wg.Now())
				}
			},
		}
		host.LaunchKernSync(p, kern)
		fmt.Printf("[%8v] host: kernel fully complete (teardown done)\n", p.Now())
	})

	cluster.Run()
}
