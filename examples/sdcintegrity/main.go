// Silent-data-corruption detection end to end: a 4-node GPU-TN verified
// ring Allreduce where rank 1 is a "core that doesn't count" — every
// reduction combine it performs during the faulty window produces a wrong
// value. The link checksum never fires (the frames rank 1 sends are
// internally consistent: a correct CRC over the wrong bytes), so detection
// is purely the claim chain's: each chunk carries the sender's claimed
// partial sum in-band, the next hop recomputes and catches the mismatch,
// blames its ring predecessor, and after three strikes the membership
// layer quarantines rank 1 permanently (PeerDeadCorrupt). The retried
// attempt heals the ring over the three survivors and recomputes the
// exact sum over their contributions alone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/backends"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/health"
	"repro/internal/nic"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	const nodesN = 4
	const elems = 8192
	const faulty = 1

	// Integer-valued inputs in [1, 64]: partial sums are exact in float64,
	// so the claim check has zero false positives and any injected flip
	// (delta >= 0.5) lands far outside the comparison band.
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, nodesN)
	for r := range data {
		data[r] = make([]float32, elems)
		for i := range data[r] {
			data[r][i] = float32(1 + rng.Intn(64))
		}
	}

	cfg := config.Default()
	// The integrity stack: reliable delivery (NACK/retransmit for frames
	// the e2e checksum rejects), the e2e payload checksum itself, and the
	// heartbeat membership layer that turns blame into quarantine.
	cfg.NIC.Reliability = config.DefaultReliability()
	cfg.NIC.E2EChecksum = true
	cfg.Health = config.DefaultHealth()
	cfg.Faults = config.FaultConfig{SDC: config.SDCConfig{
		Seed:        7,
		FaultyRank:  faulty,
		FaultyUntil: 10 * sim.Millisecond, // covers the whole run
	}}

	cluster := node.NewCluster(cfg, nodesN)
	fmt.Println(cluster.Injector.Summary())
	fmt.Printf("quarantine after %d strikes\n\n", cfg.Health.EffectiveQuarantineStrikes())

	suite := health.Start(cluster)
	var res collective.VerifyResult
	var rerr error
	cluster.Eng.Go("verify.driver", func(p *sim.Proc) {
		res, rerr = collective.RunVerified(p, cluster, suite.Membership, collective.RecoverConfig{
			Kind:       backends.GPUTN,
			TotalBytes: elems * 4,
			Data:       data,
			Timeout:    300 * sim.Microsecond,
		})
		suite.Stop()
	})
	cluster.Run()
	if rerr != nil {
		log.Fatalf("verified run failed: %v\n%v", rerr, cluster.Diagnose())
	}

	for i, a := range res.Attempts {
		verdict := "completed"
		if a.Err != nil {
			verdict = fmt.Sprintf("rejected: %v", a.Err)
		}
		fmt.Printf("attempt %d: %9v .. %9v over view %d %v  %s\n",
			i, a.Start, a.End, a.ViewID, a.Alive, verdict)
	}
	fmt.Println()
	for _, v := range res.Violations {
		fmt.Printf("violation at %9v: rank %d caught a bad claim from rank %d (step %d)\n",
			v.At, v.Observer, v.Blamed, v.Step)
	}

	// Every violation must blame the faulty rank, and the final membership
	// must exclude it.
	for _, v := range res.Violations {
		if v.Blamed != faulty {
			log.Fatalf("violation blamed rank %d, want %d", v.Blamed, faulty)
		}
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != faulty {
		log.Fatalf("quarantined %v, want [%d]", res.Quarantined, faulty)
	}
	for _, r := range res.Alive {
		if r == faulty {
			log.Fatalf("faulty rank %d still in the final membership %v", faulty, res.Alive)
		}
	}

	// The result is the exact sum over the survivors' inputs — the faulty
	// rank's contribution is gone along with its corruption.
	want := make([]float32, elems)
	for _, r := range res.Alive {
		for i, v := range data[r] {
			want[i] += v
		}
	}
	for _, r := range res.Alive {
		for i := range want {
			if res.Output[r][i] != want[i] {
				log.Fatalf("rank %d elem %d: got %v want %v", r, i, res.Output[r][i], want[i])
			}
		}
	}

	injected := cluster.Injector.SDC().Stats().ReducerCorruptions
	var undetected int64
	for _, nd := range cluster.Nodes {
		undetected += nd.NIC.Stats().SDCUndetected
	}
	fmt.Printf("\nrank %d quarantined after %d violations; exact sum verified over %v\n",
		faulty, len(res.Violations), res.Alive)
	fmt.Printf("injected combines: %d; frames the NIC delivered unflagged: %d (claim chain caught them)\n",
		injected, undetected)
	for _, nd := range cluster.Nodes {
		if nd.Index == faulty {
			continue
		}
		info, ok := nd.NIC.PeerDeadDetail(faulty)
		if !ok || info.Reason != nic.PeerDeadCorrupt {
			log.Fatalf("node %d: peer-dead detail for rank %d = %+v, want PeerDeadCorrupt", nd.Index, faulty, info)
		}
	}
	fmt.Printf("membership: %s\n", suite.Membership)
	fmt.Println("\nThe link CRC never fired: the faulty rank's frames carry correct")
	fmt.Println("checksums over wrong bytes. Only the in-band claim chain sees it.")
}
