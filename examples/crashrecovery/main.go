// Crash-restart recovery end to end: a 4-node GPU-TN ring Allreduce loses
// rank 2 mid-collective to a scheduled crash-stop (all NIC trigger-list,
// placeholder, command-queue, and reliability state gone), the heartbeat
// membership layer — itself built from the paper's pre-registered
// triggered-op Puts fired by GPU counter ticks — suspects the silence,
// the survivors abort their attempt via receive timeouts, and when the
// node restarts cold 60us later under a new incarnation epoch it replays
// all CPU-side registration and rejoins the retried attempt. The result
// is the exact element-wise sum over the final membership, and every
// stale frame from the dead incarnation is fenced by the epoch protocol.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/health"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	const nodesN = 4
	const elems = 16384
	const crashed = 2

	data := make([][]float32, nodesN)
	want := make([]float32, elems)
	for r := range data {
		data[r] = make([]float32, elems)
		for i := range data[r] {
			data[r][i] = float32((r*7 + i) % 23)
			want[i] += data[r][i]
		}
	}

	cfg := config.Default()
	// Crash recovery rides on the reliability layer (peer-dead verdicts)
	// and the heartbeat membership view.
	cfg.NIC.Reliability = config.DefaultReliability()
	cfg.Health = config.DefaultHealth()
	// The first attempt starts once the view has been stable for
	// StabilizeDelay (60us) and runs ~25us: a crash at 70us lands
	// mid-attempt, and the node returns 60us later.
	cfg.Crash = config.CrashConfig{Events: []config.CrashEvent{
		{Node: crashed, At: 70 * sim.Microsecond, RestartAfter: 60 * sim.Microsecond},
	}}

	cluster := node.NewCluster(cfg, nodesN)
	fmt.Println(cluster.Plan.Summary())
	fmt.Printf("heartbeats: period=%v suspectAfter=%v stabilize=%v\n\n",
		cfg.Health.Period, cfg.Health.SuspectAfter, cfg.Health.StabilizeDelay)

	suite := health.Start(cluster)
	var res collective.RecoverResult
	var rerr error
	cluster.Eng.Go("recover.driver", func(p *sim.Proc) {
		res, rerr = collective.RunRecoverable(p, cluster, suite.Membership, collective.RecoverConfig{
			Kind:       backends.GPUTN,
			TotalBytes: elems * 4,
			Data:       data,
			Timeout:    100 * sim.Microsecond,
		})
		suite.Stop()
	})
	cluster.Run()
	if rerr != nil {
		log.Fatalf("recovery failed: %v\n%v", rerr, cluster.Diagnose())
	}

	for i, a := range res.Attempts {
		verdict := "completed"
		if !a.Completed {
			verdict = "aborted (crash)"
		} else if a.Err != nil {
			verdict = fmt.Sprintf("failed: %v", a.Err)
		}
		fmt.Printf("attempt %d: %9v .. %9v over view %d %v  %s\n",
			i, a.Start, a.End, a.ViewID, a.Alive, verdict)
	}

	// The restarted rank is back in the membership the result was computed
	// over, under its second incarnation.
	rejoined := false
	for _, r := range res.Alive {
		if r == crashed {
			rejoined = true
		}
	}
	if !rejoined {
		log.Fatalf("rank %d did not rejoin: final membership %v", crashed, res.Alive)
	}
	if inc := cluster.Nodes[crashed].NIC.Incarnation(); inc != 2 {
		log.Fatalf("rank %d incarnation = %d, want 2", crashed, inc)
	}
	for _, r := range res.Alive {
		for i := range want {
			if res.Output[r][i] != want[i] {
				log.Fatalf("rank %d elem %d: got %v want %v", r, i, res.Output[r][i], want[i])
			}
		}
	}

	st := cluster.Nodes[crashed].NIC.Stats()
	var fenced, epochResets int64
	for _, nd := range cluster.Nodes {
		s := nd.NIC.Stats()
		fenced += s.StaleSrcDrops + s.StaleDstDrops
		epochResets += s.EpochResets
	}
	fmt.Printf("\nrank %d rejoined under incarnation %d; exact sum verified on %v\n",
		crashed, cluster.Nodes[crashed].NIC.Incarnation(), res.Alive)
	fmt.Printf("fencing: downDrops=%d staleEpochFrames=%d epochResets=%d\n",
		st.DownDrops, fenced, epochResets)
	fmt.Printf("membership: %s\n", suite.Membership)
	fmt.Println("\nThe paper's own machinery does the detecting: heartbeats are")
	fmt.Println("triggered-op Puts the CPU pre-registered and a GPU tick fires.")
}
