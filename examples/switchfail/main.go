// Switch failure domains on the fat-tree fabric: a 16-node GPU-TN ring
// Allreduce runs on the three-tier leaf/spine/core topology while a
// deterministic schedule kills pod-0's spine0 mid-collective and never
// restores it. Every frame the dead switch held or receives is dropped;
// deterministic ECMP failover moves the affected flows onto the surviving
// spine, the reliability layer retransmits what was lost (retried paths
// are re-picked, so retransmissions route around the corpse), and the
// collective completes with the exact element-wise sum.
//
// The second act removes the redundancy: with BOTH pod-0 spines dead and
// reliability off, cross-leaf traffic inside the pod has no surviving
// path. The run does not hang — the watchdog drains and the diagnosis
// names every unrouteable flow with the routing reason.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	const nodesN = 16
	const elems = 4096

	data := make([][]float32, nodesN)
	want := make([]float32, elems)
	for r := range data {
		data[r] = make([]float32, elems)
		for i := range data[r] {
			data[r][i] = float32((r*7 + i) % 23)
			want[i] += data[r][i]
		}
	}

	// --- Act 1: spine kill with a surviving sibling -> reroute + exact sum.
	cfg := config.Default()
	cfg.Network.Topology = config.TopologyFatTree
	cfg.NIC.Reliability = config.DefaultReliability()
	cfg.NIC.MaxTriggerEntries = 2*nodesN + 16
	cfg.Faults.Switch = config.SwitchConfig{Events: []config.SwitchEvent{
		{Tier: config.SwitchTierSpine, Index: 0, At: 10 * sim.Microsecond},
	}}

	cluster := node.NewCluster(cfg, nodesN)
	ft := cluster.Fabric.(*network.FatTree)
	fmt.Printf("fat-tree: %d leaves, %d pods, %d spines, %d cores (%d switches)\n",
		ft.Leaves(), ft.Pods(), ft.Spines(), ft.Cores(), ft.SwitchCount())
	fmt.Println(cluster.SwitchPlan.Summary())

	res, err := collective.Run(cluster, collective.Config{
		Kind:       backends.GPUTN,
		TotalBytes: elems * 4,
		Data:       data,
	})
	if err != nil {
		log.Fatalf("allreduce with spine0 dead: %v\n%v", err, cluster.Diagnose())
	}
	for r := 0; r < nodesN; r++ {
		for i := range want {
			if res.Output[r][i] != want[i] {
				log.Fatalf("rank %d elem %d: got %v want %v", r, i, res.Output[r][i], want[i])
			}
		}
	}
	var retrans int64
	for _, nd := range cluster.Nodes {
		retrans += nd.NIC.Stats().Retransmits
	}
	fmt.Printf("completed in %v despite the kill: exact sum on all %d ranks\n",
		res.Duration, nodesN)
	fmt.Printf("fabric: switchDrops=%d retransmits=%d unrouteable=%d\n\n",
		ft.SwitchDrops(), retrans, ft.Unrouteable())

	// --- Act 2: kill the whole redundancy -> a named diagnosis, never a hang.
	cfg2 := config.Default()
	cfg2.Network.Topology = config.TopologyFatTree
	cfg2.NIC.MaxTriggerEntries = 2*nodesN + 16
	cfg2.Faults.Switch = config.SwitchConfig{Events: []config.SwitchEvent{
		{Tier: config.SwitchTierSpine, Index: 0, At: 2 * sim.Microsecond},
		{Tier: config.SwitchTierSpine, Index: 1, At: 2 * sim.Microsecond},
	}}
	cluster2 := node.NewCluster(cfg2, nodesN)
	ft2 := cluster2.Fabric.(*network.FatTree)
	fmt.Println(cluster2.SwitchPlan.Summary())
	_, err = collective.Run(cluster2, collective.Config{
		Kind:       backends.GPUTN,
		TotalBytes: elems * 4,
		Data:       data,
	})
	if err == nil {
		log.Fatal("allreduce over a severed pod somehow completed")
	}
	fmt.Printf("with both pod-0 spines dead the run fails fast (unrouteable=%d):\n%v\n",
		ft2.Unrouteable(), err)

	fmt.Println("\nKilling any single switch on a redundant fat-tree is survivable:")
	fmt.Println("ECMP re-picks paths per retransmission. Killing the last path is")
	fmt.Println("diagnosed by name — bounded failure, never a silent hang.")
}
