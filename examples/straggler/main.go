// Fail-slow tolerance end to end: a 4-node GPU-TN ring Allreduce (with a
// modeled compute phase before the reduction — the training-step shape)
// where node 1's GPU runs 10x slow for the first 800us. Nothing crashes
// and nothing is corrupted: the straggler's heartbeats keep flowing and
// every byte it sends is correct — it is merely late, the failure mode
// fail-stop detectors cannot see.
//
// The unmitigated run simply dilates: every rank waits on the slow rank's
// sends, so one node's slowdown is the whole job's. The mitigated run
// arms progress-based detection (heartbeats piggyback GPU tick and NIC
// completion watermarks; the membership scores each rank's relative
// progress) plus the hedged collective (sliced receive waits that file
// lag reports against a demonstrably-stalling predecessor). The Slow
// verdict excludes the straggler, the ring re-forms over the responsive
// ranks, and the sum completes exactly over their inputs. When the slow
// window ends, the score heals, the verdict lifts (OnRecovered), and the
// next collective readmits the node — a fail-slow flap, not a death.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/backends"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/health"
	"repro/internal/node"
	"repro/internal/sim"
)

const (
	nodesN    = 4
	elems     = 8192
	straggler = 1
	// computePhase is the application compute preceding the reduction;
	// it is where a compute-dilated straggler actually bleeds time (the
	// collective alone is wire-bound).
	computePhase = 50 * sim.Microsecond
	hopTimeout   = 200 * sim.Microsecond
	hedgeAfter   = 25 * sim.Microsecond
)

func slowConfig() config.SystemConfig {
	cfg := config.Default()
	cfg.NIC.Reliability = config.DefaultReliability()
	cfg.Faults = config.FaultConfig{Slow: config.SlowConfig{
		Seed: 7,
		Windows: []config.SlowWindow{{
			Node:      straggler,
			From:      0,
			Until:     800 * sim.Microsecond,
			GPUFactor: 10,
		}},
	}}
	return cfg
}

func main() {
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, nodesN)
	for r := range data {
		data[r] = make([]float32, elems)
		for i := range data[r] {
			data[r][i] = float32(rng.Intn(64))
		}
	}

	// Arm 1: no detection. The run completes over all four ranks — and
	// inherits the straggler's dilation wholesale.
	unmitCluster := node.NewCluster(slowConfig(), nodesN)
	fmt.Println(unmitCluster.Injector.Summary())
	unmit, err := collective.Run(unmitCluster, collective.Config{
		Kind: backends.GPUTN, TotalBytes: elems * 4, Data: data,
		ComputePhase: computePhase,
	})
	if err != nil {
		log.Fatalf("unmitigated run failed: %v", err)
	}

	// Arm 2: progress-based detection + hedged collective.
	cfg := slowConfig()
	cfg.Health = config.HealthConfig{
		Enabled:        true,
		Period:         5 * sim.Microsecond,
		SuspectAfter:   500 * sim.Microsecond, // slow, not dead: keep fail-stop out of it
		StabilizeDelay: 20 * sim.Microsecond,
		SlowDetect:     true,
		SlowGrace:      5 * sim.Microsecond,
	}
	cluster := node.NewCluster(cfg, nodesN)
	suite := health.Start(cluster)
	suite.Membership.OnSlow(func(n int) {
		fmt.Printf("%9v: node %d confirmed SLOW (score %.2f) — view %d\n",
			cluster.Eng.Now(), n, suite.Membership.SlowScore(n), suite.Membership.ViewID())
	})
	suite.Membership.OnRecovered(func(n int) {
		fmt.Printf("%9v: node %d recovered — view %d\n",
			cluster.Eng.Now(), n, suite.Membership.ViewID())
	})

	hcfg := collective.HedgeConfig{
		RecoverConfig: collective.RecoverConfig{
			Kind: backends.GPUTN, TotalBytes: elems * 4, Data: data,
			Timeout: hopTimeout, ComputePhase: computePhase,
		},
		HedgeAfter: hedgeAfter,
	}
	var first, second collective.RecoverResult
	var err1, err2 error
	cluster.Eng.Go("hedged.driver", func(p *sim.Proc) {
		first, err1 = collective.RunHedged(p, cluster, suite.Membership, hcfg)
		// Wait out the slow window; the straggler's healthy tick rate
		// heals its score and the verdict lifts.
		for i := 0; i < 100 && suite.Membership.Member(straggler).Status != health.Alive; i++ {
			p.Sleep(50 * sim.Microsecond)
		}
		second, err2 = collective.RunHedged(p, cluster, suite.Membership, hcfg)
		suite.Stop()
	})
	cluster.Run()
	if err1 != nil {
		log.Fatalf("hedged run failed: %v\n%v", err1, cluster.Diagnose())
	}
	if err2 != nil {
		log.Fatalf("post-recovery run failed: %v\n%v", err2, cluster.Diagnose())
	}

	fmt.Println()
	for i, a := range first.Attempts {
		verdict := "completed"
		if a.Err != nil {
			verdict = fmt.Sprintf("abandoned: %v", a.Err)
		}
		fmt.Printf("attempt %d: %9v .. %9v over view %d %v  %s\n",
			i, a.Start, a.End, a.ViewID, a.Alive, verdict)
	}

	// The hedged run must have excluded the straggler and summed exactly
	// over the responsive ranks; the post-recovery run must have taken
	// all four back.
	for _, r := range first.Alive {
		if r == straggler {
			log.Fatalf("straggler %d still in hedged membership %v", straggler, first.Alive)
		}
	}
	if len(second.Alive) != nodesN {
		log.Fatalf("recovered straggler not readmitted: %v", second.Alive)
	}
	for _, res := range []collective.RecoverResult{first, second} {
		want := make([]float32, elems)
		for _, r := range res.Alive {
			for i, v := range data[r] {
				want[i] += v
			}
		}
		for _, r := range res.Alive {
			for i := range want {
				if res.Output[r][i] != want[i] {
					log.Fatalf("rank %d elem %d: got %v want %v", r, i, res.Output[r][i], want[i])
				}
			}
		}
	}

	ms := suite.Membership.Stats()
	fmt.Printf("\nunmitigated (no detection, all 4 ranks): %v\n", unmit.Duration)
	fmt.Printf("hedged (straggler excluded, exact over %v): %v  — %.2fx faster\n",
		first.Alive, first.Duration, float64(unmit.Duration)/float64(first.Duration))
	fmt.Printf("after the window: readmitted, exact over %v in %d attempt(s)\n",
		second.Alive, len(second.Attempts))
	fmt.Printf("detector: %d Slow verdict(s), %d recovery(ies), %d lag report(s)\n",
		ms.SlowVerdicts, ms.SlowsRecovered, ms.LagReports)
	fmt.Println("\nNothing crashed and nothing was wrong — node 1 was only late. The")
	fmt.Println("progress watermarks saw its tick rate sag, the hedged hops stopped")
	fmt.Println("waiting, and the job ran at the speed of its responsive members.")
}
