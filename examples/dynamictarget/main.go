// Dynamic communication (§3.4): the GPU decides the message's destination
// at run time. The host stages a generic triggered put; the kernel's
// trigger write carries an override field that redirects the operation to
// a target computed on the GPU — here, the node holding the largest
// partial result, determined inside the kernel.
//
// The paper leaves dynamic GPU-TN as future work and notes it trades "some
// additional GPU-side control flow divergence" for flexibility; the run
// prints the extra system-scope stores that divergence costs.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/node"
	"repro/internal/portals"
	"repro/internal/sim"
)

func main() {
	const n = 4
	cluster := node.NewCluster(config.Default(), n)

	// Every node exposes a landing region; we watch who receives.
	recvCTs := make([]*portals.CT, n)
	for i := 1; i < n; i++ {
		recvCTs[i] = cluster.Nodes[i].Ptl.CTAlloc()
		cluster.Nodes[i].Ptl.MEAppend(&portals.ME{MatchBits: 0xD1, Length: 4096, CT: recvCTs[i]})
	}

	cluster.Eng.Go("node0", func(p *sim.Proc) {
		host := core.NewHost(cluster.Eng, cluster.Nodes[0].Ptl, cluster.Nodes[0].GPU)
		md := host.Portals().MDBind("result", 4096, nil, nil)
		// Staged toward node 1 as a default; the kernel will override.
		if err := host.TrigPut(p, 1, 1, md, 4096, 1, 0xD1); err != nil {
			log.Fatal(err)
		}
		trig := host.GetTriggerAddr()

		partials := []float64{0.3, 0.9, 0.1} // owned by nodes 1..3
		host.LaunchKernSync(p, &gpu.Kernel{
			Name:       "argmax-and-send",
			WorkGroups: 1,
			Body: func(wg *gpu.WGCtx) {
				wg.Compute(400 * sim.Nanosecond) // compute the partials
				// GPU-side decision: send to the owner of the maximum.
				best, target := partials[0], 1
				for i, v := range partials[1:] {
					if v > best {
						best, target = v, i+2
					}
				}
				fmt.Printf("[%8v] kernel: argmax=%.1f -> sending to node %d\n", wg.Now(), best, target)
				core.TriggerKernelDynamic(wg, trig, 1, core.DynamicFields{
					HasTarget: true, Target: target,
				})
			},
		})
	})
	cluster.Run()

	for i := 1; i < n; i++ {
		fmt.Printf("node %d received %d message(s)\n", i, recvCTs[i].Value())
	}
	st := cluster.Nodes[0].NIC.Stats()
	fmt.Printf("NIC: dynamic fires=%d (1 override field = 1 extra system-scope store on the GPU)\n",
		st.DynamicFires)
}
