// Halo exchange: the communication pattern of iterative stencils (§5.3),
// written directly against the GPU-TN kernel API at work-group granularity
// (Figure 7b). Four nodes in a 2x2 grid run a persistent kernel for several
// iterations; each iteration every node sends one halo edge to each
// neighbour from inside the kernel and polls for the neighbours' edges,
// with no kernel boundary between iterations.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/config"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/workloads/jacobi"
)

func main() {
	const n, px, py, iters = 64, 2, 2, 4

	fmt.Printf("2D Jacobi, %dx%d local grid on %dx%d nodes, %d iterations\n\n", n, n, px, py, iters)

	// Run the same decomposition on every backend; the numerics are
	// identical, only the timing differs.
	dec := jacobi.Decomp{N: n, PX: px, PY: py}
	want := dec.Reference(iters)

	for _, kind := range backends.All() {
		cluster := node.NewCluster(config.Default(), px*py)
		res, err := jacobi.Run(cluster, jacobi.Params{
			Kind: kind, N: n, PX: px, PY: py, Iters: iters, WithData: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Verify rank 0's interior against the serial reference solver.
		maxErr := 0.0
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				d := float64(res.Grids[0].At(i, j) - want[0].At(i, j))
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
			}
		}
		fmt.Printf("%-7s total=%9v  per-iteration=%9v  max|err|=%g\n",
			kind, res.Duration, res.Duration/sim.Time(iters), maxErr)
	}

	fmt.Println("\nGPU-TN runs the whole loop in one persistent kernel: halo puts")
	fmt.Println("are triggered intra-kernel, so no launch/teardown is paid per iteration.")
}
