// Mixed granularity and relaxed synchronization: the two programming-model
// refinements of §4.2.3 and §3.2.
//
// Part 1 sends one message per *pair* of work-groups by setting the NIC
// threshold to 2 (half as many messages as work-group granularity), using
// core.Plan so host registration and kernel triggering cannot disagree.
//
// Part 2 launches the kernel *before* the host registers the triggered
// operations: the GPU's tag writes arrive at a NIC that has never heard of
// them, placeholder trigger entries absorb the counts, and the operations
// fire the moment the late registrations land (relaxed synchronization).
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/node"
	"repro/internal/portals"
	"repro/internal/sim"
)

func main() {
	partOneMixed()
	partTwoRelaxed()
}

func partOneMixed() {
	fmt.Println("-- mixed granularity: one message per pair of work-groups --")
	cluster := node.NewCluster(config.Default(), 2)
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	recvCT := n1.Ptl.CTAlloc()
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x1, Length: 64, CT: recvCT})

	const wgs, per = 8, 2
	cluster.Eng.Go("host", func(p *sim.Proc) {
		host := core.NewHost(cluster.Eng, n0.Ptl, n0.GPU)
		md := host.Portals().MDBind("buf", 64, nil, nil)
		regs, err := core.Plan(core.Mixed, 0, wgs, 64, per)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host: plan = %d messages (thresholds:", len(regs))
		for _, r := range regs {
			fmt.Printf(" %d", r.Threshold)
		}
		fmt.Println(")")
		if err := host.TrigPutPlan(p, regs, md, 64, 1, 0x1); err != nil {
			log.Fatal(err)
		}
		trig := host.GetTriggerAddr()
		host.LaunchKernSync(p, &gpu.Kernel{
			Name: "mixed", WorkGroups: wgs,
			Body: func(wg *gpu.WGCtx) {
				wg.Compute(200 * sim.Nanosecond)
				core.TriggerMixed(wg, trig, 0, per)
			},
		})
		recvCT.Wait(p, int64(len(regs)))
		fmt.Printf("target received %d messages from %d work-groups at %v\n\n",
			recvCT.Value(), wgs, p.Now())
	})
	cluster.Run()
}

func partTwoRelaxed() {
	fmt.Println("-- relaxed synchronization: trigger before register --")
	cluster := node.NewCluster(config.Default(), 2)
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	recvCT := n1.Ptl.CTAlloc()
	n1.Ptl.MEAppend(&portals.ME{MatchBits: 0x2, Length: 64, CT: recvCT})

	host := core.NewHost(cluster.Eng, n0.Ptl, n0.GPU)
	trig := host.GetTriggerAddr()

	// Kernel launched immediately; it triggers tag 9 long before the host
	// gets around to registering it.
	cluster.Eng.Go("gpu-side", func(p *sim.Proc) {
		host.LaunchKern(&gpu.Kernel{
			Name: "eager", WorkGroups: 1,
			Body: func(wg *gpu.WGCtx) {
				core.TriggerKernel(wg, trig, 9)
				fmt.Printf("kernel: tag 9 written at %v (nothing registered yet)\n", wg.Now())
			},
		})
	})
	cluster.Eng.Go("host-side", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond) // host busy elsewhere
		md := host.Portals().MDBind("buf", 64, nil, nil)
		if err := host.TrigPut(p, 9, 1, md, 64, 1, 0x2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host: registration landed at %v\n", p.Now())
		recvCT.Wait(p, 1)
		fmt.Printf("target: message delivered at %v — fired immediately on registration\n", p.Now())
		st := n0.NIC.Stats()
		fmt.Printf("NIC stats: placeholders=%d immediate-fires=%d\n",
			st.PlaceholdersMade, st.ImmediateFires)
	})
	cluster.Run()
}
