// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§5) under `go test -bench=.`:
//
//	BenchmarkFig1LaunchLatency   — Figure 1 (launch latency vs queue depth)
//	BenchmarkFig8Microbenchmark  — Figure 8 (latency decomposition)
//	BenchmarkFig9Jacobi          — Figure 9 (2D Jacobi speedup sweep)
//	BenchmarkFig10Allreduce      — Figure 10 (8MB Allreduce strong scaling)
//	BenchmarkFig11DeepLearning   — Figure 11 + Table 3 (DL projections)
//	BenchmarkAblation*           — the DESIGN.md §5 ablation studies
//
// Reported custom metrics carry the figures' headline values (speedups,
// microseconds), so `go test -bench=. -benchmem | tee bench_output.txt`
// is the full reproduction record.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/workloads/jacobi"
	"repro/internal/workloads/mlearn"
)

func BenchmarkFig1LaunchLatency(b *testing.B) {
	cfg := config.Default()
	for _, preset := range config.Figure1Presets() {
		for _, depth := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("%s/depth=%d", preset.Name, depth), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					_ = cfg
					last = preset.LaunchLatency(depth).Us()
				}
				b.ReportMetric(last, "launch-us")
			})
		}
	}
}

func BenchmarkFig8Microbenchmark(b *testing.B) {
	cfg := config.Default()
	var res *bench.Fig8Result
	for i := 0; i < b.N; i++ {
		res = bench.Figure8(cfg)
	}
	b.ReportMetric(res.Runs[backends.GPUTN].TargetComplete.Us(), "gputn-us")
	b.ReportMetric(res.Runs[backends.GDS].TargetComplete.Us(), "gds-us")
	b.ReportMetric(res.Runs[backends.HDN].TargetComplete.Us(), "hdn-us")
	b.ReportMetric(res.SpeedupVs(backends.HDN), "speedup-vs-hdn")
	b.ReportMetric(res.SpeedupVs(backends.GDS), "speedup-vs-gds")
}

func BenchmarkFig9Jacobi(b *testing.B) {
	cfg := config.Default()
	for _, n := range []int{16, 128, 1024} {
		for _, kind := range backends.All() {
			b.Run(fmt.Sprintf("N=%d/%s", n, kind), func(b *testing.B) {
				var dur sim.Time
				for i := 0; i < b.N; i++ {
					c := node.NewCluster(cfg, 4)
					res, err := jacobi.Run(c, jacobi.Params{
						Kind: kind, N: n, PX: 2, PY: 2, Iters: bench.Fig9Iters,
					})
					if err != nil {
						b.Fatal(err)
					}
					dur = res.Duration
				}
				b.ReportMetric(dur.Us()/float64(bench.Fig9Iters), "us/iter")
			})
		}
	}
}

func BenchmarkFig10Allreduce(b *testing.B) {
	cfg := config.Default()
	for _, n := range []int{2, 8, 16, 32} {
		for _, kind := range backends.All() {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, kind), func(b *testing.B) {
				var dur sim.Time
				for i := 0; i < b.N; i++ {
					c := node.NewCluster(cfg, n)
					res, err := collective.Run(c, collective.Config{
						Kind: kind, TotalBytes: bench.Fig10Payload,
					})
					if err != nil {
						b.Fatal(err)
					}
					dur = res.Duration
				}
				b.ReportMetric(dur.Us(), "allreduce-us")
			})
		}
	}
}

func BenchmarkFig11DeepLearning(b *testing.B) {
	cfg := config.Default()
	for _, w := range mlearn.Table3() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var sp map[backends.Kind]float64
			for i := 0; i < b.N; i++ {
				times, err := mlearn.AllreduceTimes(cfg, bench.Fig11Nodes, w.AvgMsgBytes)
				if err != nil {
					b.Fatal(err)
				}
				sp = mlearn.Project(w, times)
			}
			b.ReportMetric(sp[backends.GPUTN], "gputn-speedup")
			b.ReportMetric(sp[backends.GDS], "gds-speedup")
			b.ReportMetric(sp[backends.CPU], "cpu-speedup")
		})
	}
}

func BenchmarkAblationRelaxedSync(b *testing.B) {
	cfg := config.Default()
	var relaxed, strict sim.Time
	for i := 0; i < b.N; i++ {
		relaxed, strict = bench.AblationRelaxedSync(cfg, 2*sim.Microsecond)
	}
	b.ReportMetric(relaxed.Us(), "relaxed-us")
	b.ReportMetric(strict.Us(), "strict-us")
}

func BenchmarkAblationGranularity(b *testing.B) {
	cfg := config.Default()
	var res map[core.Granularity]sim.Time
	for i := 0; i < b.N; i++ {
		res = bench.AblationGranularity(cfg, 8, 64)
	}
	b.ReportMetric(res[core.WorkItem].Us(), "workitem-us")
	b.ReportMetric(res[core.WorkGroup].Us(), "workgroup-us")
	b.ReportMetric(res[core.KernelLevel].Us(), "kernel-us")
	b.ReportMetric(res[core.Mixed].Us(), "mixed-us")
}

func BenchmarkAblationTriggerLookup(b *testing.B) {
	cfg := config.Default()
	var res map[string]sim.Time
	for i := 0; i < b.N; i++ {
		res = bench.AblationTriggerLookup(cfg, 1024)
	}
	b.ReportMetric(res["associative"].Us(), "associative-us")
	b.ReportMetric(res["hash"].Us(), "hash-us")
	b.ReportMetric(res["linked-list"].Us(), "linkedlist-us")
}

func BenchmarkAblationKernelOverhead(b *testing.B) {
	cfg := config.Default()
	var res map[float64][2]float64
	for i := 0; i < b.N; i++ {
		res = bench.AblationKernelOverhead(cfg, []float64{1, 4})
	}
	b.ReportMetric(res[1][0], "x1-vs-hdn")
	b.ReportMetric(res[4][0], "x4-vs-hdn")
}

func BenchmarkAblationDiscreteGPU(b *testing.B) {
	cfg := config.Default()
	var apu, disc sim.Time
	for i := 0; i < b.N; i++ {
		apu, disc = bench.AblationDiscreteGPU(cfg, 500*sim.Nanosecond)
	}
	b.ReportMetric(apu.Us(), "apu-us")
	b.ReportMetric(disc.Us(), "discrete-us")
}

func BenchmarkAblationPipelining(b *testing.B) {
	cfg := config.Default()
	var res map[int][2]sim.Time
	for i := 0; i < b.N; i++ {
		res = bench.AblationPipelining(cfg, []int{8})
	}
	b.ReportMetric(res[8][0].Us(), "plain-us")
	b.ReportMetric(res[8][1].Us(), "pipelined-us")
}

func BenchmarkAblationDynamicTrigger(b *testing.B) {
	cfg := config.Default()
	var res [4]sim.Time
	for i := 0; i < b.N; i++ {
		res = bench.AblationDynamicTrigger(cfg)
	}
	b.ReportMetric(res[0].Us(), "static-us")
	b.ReportMetric(res[3].Us(), "3fields-us")
}

// BenchmarkTrainingLoop cross-validates the Figure 11 projection with a
// full in-sim synchronous-SGD segment on 4 nodes.
func BenchmarkTrainingLoop(b *testing.B) {
	cfg := config.Default()
	w := mlearn.Table3()[1] // AN4 LSTM
	times, err := mlearn.AllreduceTimes(cfg, 4, w.AvgMsgBytes)
	if err != nil {
		b.Fatal(err)
	}
	trace := mlearn.GenerateTrace(w, 6, times[backends.HDN], 1)
	var sp map[backends.Kind]float64
	for i := 0; i < b.N; i++ {
		sp, err = mlearn.TrainingSpeedups(cfg, 4, trace, w.AvgMsgBytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sp[backends.GPUTN], "gputn-speedup")
	b.ReportMetric(mlearn.Project(w, times)[backends.GPUTN], "projected")
}

// BenchmarkAllreduce16 is the perf-trajectory anchor: one 16-node GPU-TN
// 8MB ring allreduce per iteration, the workload that dominates the
// Figure 10 sweep. Allocation counts here track the whole model stack, not
// just the engine, so regressions in any layer show up.
func BenchmarkAllreduce16(b *testing.B) {
	cfg := config.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := node.NewCluster(cfg, 16)
		res, err := collective.Run(c, collective.Config{
			Kind: backends.GPUTN, TotalBytes: bench.Fig10Payload,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Duration.Us(), "allreduce-us")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw engine throughput: events
// executed per second of wall time, the figure of merit for scaling these
// experiments up.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 100000 {
				eng.After(10, tick)
			}
		}
		eng.After(0, tick)
		eng.Run()
	}
	b.ReportMetric(100000, "events/op")
}
