// Command gputn-micro runs the Figure 8 latency-decomposition
// microbenchmark and prints the initiator/target timelines for HDN, GDS,
// and GPU-TN, including the full span traces.
package main

import (
	"flag"
	"fmt"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
)

func main() {
	verbose := flag.Bool("v", false, "print full span timelines")
	extended := flag.Bool("extended", false, "include the GHN/GNN models (§5.1.1 made quantitative)")
	flag.Parse()

	cfg := config.Default()
	if *extended {
		res := bench.Figure8Extended(cfg)
		fmt.Print(bench.RenderFigure8(res))
		fmt.Println()
		fmt.Print(bench.RenderFigure8Extended(res))
		return
	}
	res := bench.Figure8(cfg)
	fmt.Print(bench.RenderFigure8(res))
	if *verbose {
		for _, kind := range []backends.Kind{backends.HDN, backends.GDS, backends.GPUTN} {
			fmt.Printf("\n--- %s timeline ---\n%s", kind, res.Runs[kind].Tracer.Render())
		}
	}
}
