// Command gputn-jacobi runs the 2D Jacobi relaxation (§5.3) on a chosen
// backend and grid size, or the full Figure 9 sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads/jacobi"
)

func main() {
	sweep := flag.Bool("sweep", false, "run the full Figure 9 sweep")
	n := flag.Int("n", 128, "local grid size (NxN)")
	px := flag.Int("px", 2, "node grid width")
	py := flag.Int("py", 2, "node grid height")
	iters := flag.Int("iters", 8, "iterations")
	backend := flag.String("backend", "", "one of CPU|HDN|GDS|GPU-TN (empty = all)")
	flag.Parse()

	cfg := config.Default()
	if *sweep {
		fmt.Println(stats.RenderSeries("Figure 9: Jacobi speedup vs HDN (2x2 nodes, per-iteration)",
			"N", bench.Figure9(cfg)))
		return
	}
	kinds := backends.All()
	if *backend != "" {
		kinds = nil
		for _, k := range backends.All() {
			if k.String() == *backend {
				kinds = []backends.Kind{k}
			}
		}
		if kinds == nil {
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
			os.Exit(2)
		}
	}
	for _, k := range kinds {
		c := node.NewCluster(cfg, (*px)*(*py))
		res, err := jacobi.Run(c, jacobi.Params{Kind: k, N: *n, PX: *px, PY: *py, Iters: *iters})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-7s N=%d %dx%d iters=%d: total=%v per-iter=%v\n",
			k, *n, *px, *py, *iters, res.Duration, res.Duration/sim.Time(*iters))
	}
}
