// Command gputn-ml reproduces the deep-learning study: Table 3 (workload
// characteristics) and Figure 11 (projected training speedup on 8 nodes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/workloads/mlearn"
)

func main() {
	table3 := flag.Bool("table3", false, "print Table 3 only")
	nodes := flag.Int("nodes", bench.Fig11Nodes, "cluster size for the projection")
	sweep := flag.Bool("sweep", false, "sweep GPU-TN projections across node counts (extension)")
	train := flag.Bool("train", false, "run the in-sim training loop cross-validation (extension)")
	flag.Parse()

	cfg := config.Default()
	switch {
	case *table3:
		fmt.Println(bench.RenderTable3())

	case *sweep:
		counts := []int{2, 4, 8, 16, 32}
		fmt.Println("Extension: projected GPU-TN speedup vs HDN across cluster sizes")
		for _, w := range mlearn.Table3() {
			res, err := mlearn.SweepNodes(cfg, w, counts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-13s", w.Name)
			for _, n := range counts {
				fmt.Printf("  %d:%.3f", n, res[n])
			}
			fmt.Println()
		}

	case *train:
		fmt.Printf("Extension: in-sim synchronous-SGD training loop (%d nodes), measured vs projected\n", *nodes)
		for _, w := range mlearn.Table3() {
			times, err := mlearn.AllreduceTimes(cfg, *nodes, w.AvgMsgBytes)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			closed := mlearn.Project(w, times)
			trace := mlearn.GenerateTrace(w, 6, times[backends.HDN], 1)
			measured, err := mlearn.TrainingSpeedups(cfg, *nodes, trace, w.AvgMsgBytes)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-13s GPU-TN measured %.3f / projected %.3f\n",
				w.Name, measured[backends.GPUTN], closed[backends.GPUTN])
		}

	default:
		results, err := mlearn.RunStudy(cfg, *nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(bench.RenderTable3())
		fmt.Println(bench.RenderFigure11(results))
	}
}
