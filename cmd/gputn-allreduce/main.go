// Command gputn-allreduce runs the ring Allreduce collective (§5.4.1) on a
// chosen backend, payload, and node count, or the full Figure 10 sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/node"
	"repro/internal/stats"
)

func main() {
	sweep := flag.Bool("sweep", false, "run the full Figure 10 sweep")
	nodes := flag.Int("nodes", 8, "cluster size")
	bytes := flag.Int64("bytes", 8<<20, "payload per rank")
	backend := flag.String("backend", "", "one of CPU|HDN|GDS|GPU-TN (empty = all)")
	flag.Parse()

	cfg := config.Default()
	if *sweep {
		fmt.Println(stats.RenderSeries("Figure 10: 8MB Allreduce speedup vs CPU (strong scaling)",
			"nodes", bench.Figure10(cfg)))
		return
	}
	kinds := backends.All()
	if *backend != "" {
		kinds = nil
		for _, k := range backends.All() {
			if k.String() == *backend {
				kinds = []backends.Kind{k}
			}
		}
		if kinds == nil {
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
			os.Exit(2)
		}
	}
	for _, k := range kinds {
		c := node.NewCluster(cfg, *nodes)
		res, err := collective.Run(c, collective.Config{Kind: k, TotalBytes: *bytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-7s %d nodes, %d bytes: %v\n", k, *nodes, *bytes, res.Duration)
	}
}
