// Command gputn-sweep runs a two-dimensional sensitivity study around the
// Figure 8 microbenchmark: GPU kernel-overhead scale (the Figure 1 range)
// crossed with network bandwidth (fabric generations). The cell value is
// GPU-TN's end-to-end latency reduction versus a chosen baseline — mapping
// out where intra-kernel triggering matters most.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	baseline := flag.String("baseline", "HDN", "baseline: HDN or GDS")
	csvPath := flag.String("csv", "", "also write the grid as CSV")
	flag.Parse()

	var base backends.Kind
	switch *baseline {
	case "HDN":
		base = backends.HDN
	case "GDS":
		base = backends.GDS
	default:
		fmt.Fprintf(os.Stderr, "unknown baseline %q\n", *baseline)
		os.Exit(2)
	}

	scales := []float64{0.5, 1, 2, 4}
	rates := []float64{10, 25, 100, 400}

	tbl := stats.Table{
		Title:   fmt.Sprintf("GPU-TN latency reduction vs %s (%%), kernel-overhead scale x bandwidth", base),
		Headers: []string{"overhead\\Gbps"},
	}
	var series []*stats.Series
	for _, r := range rates {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%.0f", r))
	}
	for _, s := range scales {
		row := []string{fmt.Sprintf("x%.1f", s)}
		sr := &stats.Series{Name: fmt.Sprintf("x%.1f", s)}
		for _, rate := range rates {
			cfg := config.Default()
			cfg.GPU.KernelLaunch = sim.Time(float64(cfg.GPU.KernelLaunch) * s)
			cfg.GPU.KernelTeardown = sim.Time(float64(cfg.GPU.KernelTeardown) * s)
			cfg.Network.BandwidthGbps = rate
			res := bench.Figure8(cfg)
			reduction := (1 - 1/res.SpeedupVs(base)) * 100
			row = append(row, fmt.Sprintf("%.1f", reduction))
			sr.Add(rate, reduction)
		}
		tbl.AddRow(row...)
		series = append(series, sr)
	}
	fmt.Println(tbl.String())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := stats.WriteSeriesCSV(f, "gbps", series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
