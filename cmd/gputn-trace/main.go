// Command gputn-trace runs the Figure 8 microbenchmark and writes each
// backend's span timeline as a Chrome trace-event JSON file, loadable in
// chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/config"
)

func main() {
	dir := flag.String("o", ".", "output directory")
	flag.Parse()

	res := bench.Figure8(config.Default())
	for _, kind := range []backends.Kind{backends.HDN, backends.GDS, backends.GPUTN} {
		name := strings.ToLower(strings.ReplaceAll(kind.String(), "-", ""))
		path := filepath.Join(*dir, fmt.Sprintf("fig8-%s.trace.json", name))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Runs[kind].Tracer.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
