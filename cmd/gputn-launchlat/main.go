// Command gputn-launchlat runs the Figure 1 study: per-kernel launch
// latency versus the number of kernel commands queued to the GPU hardware
// scheduler, for three GPU presets.
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/stats"
)

func main() {
	fmt.Println(stats.RenderSeries(
		"Figure 1: kernel launch latency (us) vs queued kernel commands",
		"queued", bench.Figure1(config.Default())))
}
