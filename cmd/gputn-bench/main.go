// Command gputn-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gputn-bench -exp all
//	gputn-bench -exp fig10
//	gputn-bench -exp figures -parallel 8
//	gputn-bench -exp perf -perf-preset smoke -bench-out BENCH_sim.json
//	gputn-bench -exp faults -fault-drop 0.05 -reliable
//
// Experiments: fig1, fig8, fig9, fig10, fig11, table1, table2, table3,
// ablations, faults, resources, crash, partitions, sdc, perf, all;
// "figures" runs fig1+fig8+fig9+fig10+fig11.
//
// The -parallel flag sets how many OS threads the sweep runner fans
// independent simulation replicas across (default: NumCPU). Results are
// collected in submission order, so output is byte-identical for any
// -parallel value; -parallel 1 takes the exact serial code path.
//
// The -shards flag shards each simulated cluster's nodes across N event
// engines synchronized by conservative bounded-window lookahead (the
// minimum cross-node fabric latency). Simulated results are shard-count
// invariant: -shards 1, 2, and 4 print identical figures; only wall time
// changes. -shards 0 (default) keeps the single global event loop,
// bit-identical to the pre-sharding simulator. Features that need a
// global event order (crash schedules, health membership, tree topology)
// silently cap the engine count at one.
//
// The -exp perf harness measures the simulator itself (events/sec,
// allocs/event, wall time per experiment) and writes BENCH_sim.json;
// -bench-baseline compares against a committed report and exits nonzero
// when events/sec regresses beyond -bench-tolerance. The -cpuprofile and
// -memprofile flags capture pprof profiles of whatever experiment runs.
//
// The -fault-* flag group arms the deterministic fault injector for every
// experiment in the run; with all of them zero (the default) the fabric is
// lossless and results are bit-for-bit the fault-free numbers. The -cap-*
// flag group bounds NIC resources (trigger-list entries, relaxed-sync
// placeholders, command queue, trigger FIFO, event queues) the same way:
// all-zero keeps the unbounded seed behavior bit-for-bit.
//
// The -crash-* flag group arms a deterministic crash-stop/restart schedule
// and the -health-* group tunes the heartbeat membership timing; -exp
// crash sweeps restart delay vs recovery latency per backend. All-zero
// disables both, keeping the crash-free behavior bit-for-bit.
//
// The -part-* flag group arms one deterministic network partition (cut
// side A off from side B — or from everyone else when -part-b is empty —
// at -part-at-us, healing after -part-heal-us; -part-asym blackholes only
// the A->B direction). The -degrade-* group arms one gray-link window
// (latency multiplier and packet loss on a directed link). -adaptive-rto
// switches the reliable layer's retransmit timer from the static RTOBase
// to the per-peer Jacobson/Karels estimator. -exp partitions sweeps
// partition heal delay and gray-link severity per backend. -list prints
// every experiment with a one-line description and exits.
//
// The -sdc-* flag group arms silent-data-corruption injection — corruption
// the link checksum does NOT catch (silent wire flips, buffer corruption at
// rest on one node, a faulty reducer rank) — and -e2e arms the end-to-end
// payload checksum that detects it (-e2e-latency-ns prices each sum). All
// zero keeps the corruption-free behavior bit-for-bit. -exp sdc sweeps
// corruption rate x class, reporting detection latency, undetected-escape
// rate with/without verification, and the e2e checksum's clean-path
// overhead per backend.
//
// The -slow-* flag group arms one fail-slow (straggler) window on one node:
// -slow-gpu-factor dilates its GPU compute, -slow-cmd-factor stretches NIC
// command parsing (-slow-stall-prob/-slow-stall-us add hard per-command
// stalls), -slow-dma-factor dilates DMA transfers. All zero keeps behavior
// bit-for-bit identical to an unconfigured run. -hedge additionally arms
// progress-based fail-slow detection in the health suite (heartbeat-borne
// watermarks scored into Slow verdicts). -exp stragglers sweeps slowdown
// class x factor per backend, comparing an unmitigated run against the
// detection + hedged-collective stack.
//
// The -scenario-* flag group arms the correlated-failure scenario composer
// for every experiment: -scenario-domains names failure domains
// ("rack0=0,1,2,3;rack1=4,5,6,7"), -scenario-events schedules correlated
// events over them ("rackfail:rack0@50us,heal=80us,jitter=10us" crashes the
// whole rack AND cuts it off, then heals with a per-node jittered restart
// storm; other kinds: crash, cut, gray, slow), and -scenario-seed drives the
// composer's private jitter stream. All-empty keeps behavior bit-for-bit
// identical to an unconfigured run. -exp chaossearch samples -chaos-trials
// random composed scenarios from -chaos-seed, runs each on all four
// backends under the always-on invariant auditor, and greedily shrinks any
// violation to a minimal reproducer emitted as a replayable -scenario-*
// flag set (-chaos-replay consumes it); -chaos-inject doublefire|staledeliver
// arms a seeded protocol bug so the search provably catches violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

// experimentList names every experiment in run order with a one-line
// description; -list renders it and the runner map in run() must cover it.
var experimentList = []struct{ name, desc string }{
	{"table1", "simulated platform parameters (paper Table 1)"},
	{"table2", "communication-primitive microbenchmark latencies (paper Table 2)"},
	{"table3", "triggered-op API coverage summary (paper Table 3)"},
	{"fig1", "kernel launch latency vs queued kernel commands (paper Fig. 1)"},
	{"fig8", "Allreduce latency across backends and payload sizes (paper Fig. 8)"},
	{"fig9", "Jacobi per-iteration speedup vs HDN on a 2x2 grid (paper Fig. 9)"},
	{"fig10", "8MB Allreduce strong-scaling speedup vs CPU (paper Fig. 10)"},
	{"fig11", "machine-learning training step breakdown (paper Fig. 11)"},
	{"ablations", "mechanism ablations: relaxed sync, granularity, topology, pipelining, ..."},
	{"faults", "Allreduce latency under packet loss with reliable delivery"},
	{"resources", "NIC resource-pressure sweep (bounded trigger lists and queues)"},
	{"crash", "crash-stop/restart recovery latency vs restart delay per backend"},
	{"partitions", "partition heal-delay sweep and gray-link static-vs-adaptive RTO comparison"},
	{"sdc", "silent-data-corruption sweep: detection latency, escape rate, e2e checksum overhead"},
	{"stragglers", "fail-slow sweep: unmitigated vs hedged collectives per slowdown class and backend"},
	{"chaossearch", "shrinking chaos search: random correlated scenarios x backends under the invariant auditor (not part of -exp all)"},
	{"perf", "simulator self-benchmark: events/sec, allocs/event, wall time (not part of -exp all)"},
}

// parseNodeList parses a comma-separated node list ("0,1,3"); empty is nil.
func parseNodeList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("node list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeCSV saves a figure's series to <dir>/<name>.csv when dir is set.
func writeCSV(dir, name, xlabel string, series []*stats.Series) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := stats.WriteSeriesCSV(f, xlabel, series); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func main() { os.Exit(run()) }

// run is main minus os.Exit, so profile-flushing defers always execute.
func run() int {
	exp := flag.String("exp", "all", "experiment to run: fig1|fig8|fig9|fig10|fig11|table1|table2|table3|ablations|faults|resources|crash|partitions|sdc|stragglers|chaossearch|perf|figures|all")
	list := flag.Bool("list", false, "list all experiments with one-line descriptions and exit")
	csvDir := flag.String("csv", "", "also write figure data as CSV into this directory")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker threads for sweep replicas (1 = serial)")
	shards := flag.Int("shards", 0, "intra-run node shards for the parallel event engine (0 = serial seed-exact engine; N>=1 = conservative bounded-window engine, results shard-count invariant)")

	perfPreset := flag.String("perf-preset", "full", "perf harness preset: full|smoke")
	benchOut := flag.String("bench-out", "BENCH_sim.json", "write the perf report JSON here (empty = don't write)")
	benchBaseline := flag.String("bench-baseline", "", "compare the perf report against this baseline JSON")
	benchTolerance := flag.Float64("bench-tolerance", 0.30, "allowed fractional events/sec regression vs baseline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here at exit")

	faultSeed := flag.Int64("fault-seed", 42, "fault injector RNG seed")
	faultDrop := flag.Float64("fault-drop", 0, "per-packet drop probability [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "per-packet corruption probability [0,1]")
	flapNode := flag.Int("fault-flap-node", 0, "node whose links flap during the flap window")
	flapStartUS := flag.Float64("fault-flap-start-us", 0, "flap window start (us)")
	flapEndUS := flag.Float64("fault-flap-end-us", 0, "flap window end (us); 0 disables flapping")
	reliable := flag.Bool("reliable", false, "enable the NIC reliable-delivery layer (seq/ack/retransmit)")

	partA := flag.String("part-a", "", "comma-separated node list forming partition side A; empty disables the partition schedule")
	partB := flag.String("part-b", "", "partition side B; empty = everyone not in side A")
	partAtUS := flag.Float64("part-at-us", 0, "partition cut time (us); 0 disables the partition schedule")
	partHealUS := flag.Float64("part-heal-us", 0, "heal delay after the cut (us); 0 = never heals")
	partAsym := flag.Bool("part-asym", false, "asymmetric cut: blackhole only A->B traffic, deliver B->A")

	degradeSrc := flag.Int("degrade-src", -1, "gray-link source node (-1 = any)")
	degradeDst := flag.Int("degrade-dst", -1, "gray-link destination node (-1 = any)")
	degradeFromUS := flag.Float64("degrade-from-us", 0, "gray-link window start (us)")
	degradeUntilUS := flag.Float64("degrade-until-us", 0, "gray-link window end (us); 0 disables the window")
	degradeFactor := flag.Float64("degrade-factor", 0, "latency multiplier on the gray link (>1 slows it)")
	degradeLoss := flag.Float64("degrade-loss", 0, "per-packet loss probability on the gray link [0,1]")
	degradeRamp := flag.Bool("degrade-ramp", false, "ramp the loss linearly from 0 to -degrade-loss over the window")
	adaptiveRTO := flag.Bool("adaptive-rto", false, "use the per-peer Jacobson/Karels adaptive retransmit timer (implies -reliable behavior only when -reliable is set)")

	crashNode := flag.Int("crash-node", 0, "node the -crash-at-us event kills")
	crashAtUS := flag.Float64("crash-at-us", 0, "crash-stop time (us); 0 disables the crash schedule")
	crashRestartUS := flag.Float64("crash-restart-us", 0, "restart delay after the crash (us); 0 = never restarts")
	healthPeriodUS := flag.Float64("health-period-us", 0, "heartbeat GPU-tick period (us); 0 = default")
	healthSuspectUS := flag.Float64("health-suspect-us", 0, "silence before a node is suspected dead (us); 0 = default")
	healthStabilizeUS := flag.Float64("health-stabilize-us", 0, "view-stability window before reintegration (us); 0 = default")

	sdcSeed := flag.Int64("sdc-seed", 42, "SDC plan private RNG seed")
	sdcWire := flag.Float64("sdc-wire", 0, "per-packet silent wire-corruption probability [0,1] (link CRC stays green)")
	sdcBuffer := flag.Float64("sdc-buffer", 0, "per-send buffer-corruption-at-rest probability [0,1] on -sdc-buffer-node")
	sdcBufferNode := flag.Int("sdc-buffer-node", 0, "node whose send buffers corrupt at rest")
	sdcRank := flag.Int("sdc-rank", 0, "rank whose reduction combines are wrong during the faulty window")
	sdcFromUS := flag.Float64("sdc-from-us", 0, "faulty-reducer window start (us)")
	sdcUntilUS := flag.Float64("sdc-until-us", 0, "faulty-reducer window end (us); 0 disables the window")
	e2e := flag.Bool("e2e", false, "arm the end-to-end payload checksum (CRC32C, verified at the destination)")
	e2eLatencyNS := flag.Float64("e2e-latency-ns", 0, "modeled per-message checksum compute/verify cost (ns)")

	slowSeed := flag.Int64("slow-seed", 42, "fail-slow plan private RNG seed")
	slowNode := flag.Int("slow-node", 0, "node the fail-slow window dilates")
	slowFromUS := flag.Float64("slow-from-us", 0, "fail-slow window start (us)")
	slowUntilUS := flag.Float64("slow-until-us", 0, "fail-slow window end (us); 0 disables the window")
	slowGPU := flag.Float64("slow-gpu-factor", 0, "GPU compute dilation factor inside the window (>1 slows)")
	slowCmd := flag.Float64("slow-cmd-factor", 0, "NIC command-parse stretch factor inside the window (>1 slows)")
	slowStallProb := flag.Float64("slow-stall-prob", 0, "per-command hard-stall probability inside the window [0,1]")
	slowStallUS := flag.Float64("slow-stall-us", 0, "duration of each hard command stall (us)")
	slowDMA := flag.Float64("slow-dma-factor", 0, "DMA transfer dilation factor inside the window (>1 slows)")
	hedge := flag.Bool("hedge", false, "arm progress-based fail-slow detection in the health suite (implies health)")

	scenarioSeed := flag.Int64("scenario-seed", 42, "composed-scenario private jitter RNG seed")
	scenarioDomains := flag.String("scenario-domains", "", `named failure domains, e.g. "rack0=0,1,2,3;rack1=4,5,6,7"`)
	scenarioEvents := flag.String("scenario-events", "", `correlated events over the domains, e.g. "rackfail:rack0@50us,heal=80us,jitter=10us"; empty disables the composer`)
	chaosSeed := flag.Int64("chaos-seed", 42, "chaos-search scenario-sampling seed")
	chaosTrials := flag.Int("chaos-trials", 6, "chaos-search scenarios sampled per run")
	chaosInject := flag.String("chaos-inject", "", "arm a seeded protocol bug for chaossearch: doublefire|staledeliver")
	chaosReplay := flag.Bool("chaos-replay", false, "replay the -scenario-* flags on every backend and report audit verdicts instead of searching")

	capTrig := flag.Int("cap-trigger-entries", 0, "trigger-list capacity (0 = paper default of 16)")
	capPlaceholders := flag.Int("cap-placeholders", 0, "relaxed-sync placeholder budget (0 = shared with trigger list)")
	capCmdQ := flag.Int("cap-cmdq", 0, "host command-queue depth; full queues backpressure posters (0 = unbounded)")
	capTrigFIFO := flag.Int("cap-trigger-fifo", 0, "trigger FIFO depth; overflow drops and counts (0 = unbounded)")
	capEQ := flag.Int("cap-eq", 0, "default event-queue capacity; overflow drops PTL_EQ_DROPPED-style (0 = unbounded)")

	topo := flag.String("topo", "", "interconnect topology: star|tree|fattree (empty = the Table 2 star)")
	topoLeaf := flag.Int("topo-leaf", 0, "nodes per leaf switch for -topo tree/fattree (0 = default)")
	topoPodLeaves := flag.Int("topo-podleaves", 0, "fat-tree leaf switches per pod (0 = 2)")
	topoSpines := flag.Int("topo-spines", 0, "fat-tree spine switches per pod (0 = 2)")
	topoCores := flag.Int("topo-cores", 0, "fat-tree core switches (0 = spines)")
	topoCredits := flag.Int("topo-credits", 0, "fat-tree per-port queue credits; senders backpressure when exhausted (0 = unbounded)")
	topoECN := flag.Int("topo-ecn", 0, "fat-tree ECN marking threshold in queued frames (0 = never mark)")
	switchTier := flag.String("switch-tier", "", "deterministic switch-kill tier: leaf|spine|core|trunk (needs -switch-at-us)")
	switchIndex := flag.Int("switch-index", 0, "switch index within -switch-tier")
	switchA := flag.String("switch-a", "", `trunk endpoint A ref for -switch-tier trunk, e.g. "leaf0"`)
	switchB := flag.String("switch-b", "", `trunk endpoint B ref for -switch-tier trunk, e.g. "spine1"`)
	switchAtUS := flag.Float64("switch-at-us", 0, "switch-kill time (us); 0 disables the switch schedule")
	switchRestoreUS := flag.Float64("switch-restore-us", 0, "restore delay after the kill (us); 0 = never restored")
	flag.Parse()

	if *list {
		for _, e := range experimentList {
			fmt.Printf("%-10s  %s\n", e.name, e.desc)
		}
		fmt.Printf("%-10s  %s\n", "figures", "fig1+fig8+fig9+fig10+fig11")
		fmt.Printf("%-10s  %s\n", "all", "every experiment above except perf")
		return 0
	}

	bench.SetParallelism(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gputn-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gputn-bench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *memprofile)
		}()
	}

	cfg := config.Default()
	cfg.Shards = *shards
	cfg.Faults = config.FaultConfig{
		Seed:        *faultSeed,
		DropProb:    *faultDrop,
		CorruptProb: *faultCorrupt,
		FlapNode:    *flapNode,
		FlapStart:   sim.Time(*flapStartUS * float64(sim.Microsecond)),
		FlapEnd:     sim.Time(*flapEndUS * float64(sim.Microsecond)),
	}
	if *partAtUS > 0 {
		a, err := parseNodeList(*partA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench: -part-a:", err)
			return 2
		}
		b, err := parseNodeList(*partB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench: -part-b:", err)
			return 2
		}
		cfg.Faults.Partition = config.PartitionConfig{Events: []config.PartitionEvent{{
			A:          a,
			B:          b,
			At:         sim.Time(*partAtUS * float64(sim.Microsecond)),
			HealAfter:  sim.Time(*partHealUS * float64(sim.Microsecond)),
			Asymmetric: *partAsym,
		}}}
	}
	if *degradeUntilUS > 0 {
		cfg.Faults.Degrade = config.DegradeConfig{Windows: []config.DegradeWindow{{
			Src:           *degradeSrc,
			Dst:           *degradeDst,
			From:          sim.Time(*degradeFromUS * float64(sim.Microsecond)),
			Until:         sim.Time(*degradeUntilUS * float64(sim.Microsecond)),
			LatencyFactor: *degradeFactor,
			LossProb:      *degradeLoss,
			Ramp:          *degradeRamp,
		}}}
	}
	if *sdcWire > 0 || *sdcBuffer > 0 || *sdcUntilUS > 0 {
		cfg.Faults.SDC = config.SDCConfig{
			Seed:        *sdcSeed,
			WireProb:    *sdcWire,
			BufferProb:  *sdcBuffer,
			BufferNode:  *sdcBufferNode,
			FaultyRank:  *sdcRank,
			FaultyFrom:  sim.Time(*sdcFromUS * float64(sim.Microsecond)),
			FaultyUntil: sim.Time(*sdcUntilUS * float64(sim.Microsecond)),
		}
	}
	if *e2e {
		cfg.NIC.E2EChecksum = true
		cfg.NIC.E2EChecksumLatency = sim.Time(*e2eLatencyNS * float64(sim.Nanosecond))
	}
	if *slowUntilUS > 0 {
		cfg.Faults.Slow = config.SlowConfig{
			Seed: *slowSeed,
			Windows: []config.SlowWindow{{
				Node:         *slowNode,
				From:         sim.Time(*slowFromUS * float64(sim.Microsecond)),
				Until:        sim.Time(*slowUntilUS * float64(sim.Microsecond)),
				GPUFactor:    *slowGPU,
				CmdFactor:    *slowCmd,
				CmdStallProb: *slowStallProb,
				CmdStallTime: sim.Time(*slowStallUS * float64(sim.Microsecond)),
				DMAFactor:    *slowDMA,
			}},
		}
	}
	if *reliable {
		cfg.NIC.Reliability = config.DefaultReliability()
		cfg.NIC.Reliability.AdaptiveRTO = *adaptiveRTO
	}
	if *scenarioEvents != "" {
		doms, err := config.ParseScenarioDomains(*scenarioDomains)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench: -scenario-domains:", err)
			return 2
		}
		evs, err := config.ParseScenarioEvents(*scenarioEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench: -scenario-events:", err)
			return 2
		}
		cfg.Scenario = config.ScenarioConfig{Seed: *scenarioSeed, Domains: doms, Events: evs}
	}
	if *crashAtUS > 0 {
		cfg.Crash = config.CrashConfig{Events: []config.CrashEvent{{
			Node:         *crashNode,
			At:           sim.Time(*crashAtUS * float64(sim.Microsecond)),
			RestartAfter: sim.Time(*crashRestartUS * float64(sim.Microsecond)),
		}}}
	}
	if *crashAtUS > 0 || *hedge || *healthPeriodUS > 0 || *healthSuspectUS > 0 || *healthStabilizeUS > 0 {
		cfg.Health = config.DefaultHealth()
		if *healthPeriodUS > 0 {
			cfg.Health.Period = sim.Time(*healthPeriodUS * float64(sim.Microsecond))
		}
		if *healthSuspectUS > 0 {
			cfg.Health.SuspectAfter = sim.Time(*healthSuspectUS * float64(sim.Microsecond))
		}
		if *healthStabilizeUS > 0 {
			cfg.Health.StabilizeDelay = sim.Time(*healthStabilizeUS * float64(sim.Microsecond))
		}
		cfg.Health.SlowDetect = *hedge
	}
	cfg.NIC.Resources = config.ResourceConfig{
		TriggerEntries:     *capTrig,
		PlaceholderEntries: *capPlaceholders,
		CmdQueueDepth:      *capCmdQ,
		EQDepth:            *capEQ,
	}
	if *capTrigFIFO > 0 {
		cfg.NIC.TriggerFIFODepth = *capTrigFIFO
	}
	if *topo != "" {
		cfg.Network.Topology = *topo
		if *topo == config.TopologyTree && *topoLeaf > 0 {
			cfg.Network.TreeLeafSize = *topoLeaf
		}
	}
	cfg.Network.FatTree = config.TopologyConfig{
		LeafSize:     *topoLeaf,
		PodLeaves:    *topoPodLeaves,
		Spines:       *topoSpines,
		Cores:        *topoCores,
		QueueCredits: *topoCredits,
		ECNThreshold: *topoECN,
	}
	if *switchAtUS > 0 {
		cfg.Faults.Switch = config.SwitchConfig{Events: []config.SwitchEvent{{
			Tier:         *switchTier,
			Index:        *switchIndex,
			A:            *switchA,
			B:            *switchB,
			At:           sim.Time(*switchAtUS * float64(sim.Microsecond)),
			RestoreAfter: sim.Time(*switchRestoreUS * float64(sim.Microsecond)),
		}}}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gputn-bench:", err)
		return 2
	}
	if cfg.Faults.Enabled() && !*reliable {
		fmt.Fprintln(os.Stderr, "warning: faults armed without -reliable; lossy runs may lose messages and hang or skew results")
	}
	if cfg.Crash.Enabled() && *exp != "crash" {
		fmt.Fprintln(os.Stderr, "warning: -crash-* armed for a non-crash experiment; only crash-aware recovery drivers survive a mid-run crash")
	}
	// Run header: every invocation states its fault and crash schedules up
	// front so saved outputs are self-describing.
	if cfg.Shards > 0 {
		fmt.Printf("engine: sharded (shards=%d, conservative bounded-window sync)\n", cfg.Shards)
	}
	fmt.Println(fault.NewInjector(cfg.Faults).Summary())
	fmt.Println(fault.NewCrashPlan(cfg.Crash).Summary())
	switch cfg.Network.Topology {
	case config.TopologyFatTree:
		ft := cfg.Network.FatTree.WithDefaults()
		fmt.Printf("topology: fattree leaf=%d podleaves=%d spines=%d cores=%d credits=%d ecn=%d\n",
			ft.LeafSize, ft.PodLeaves, ft.Spines, ft.Cores, ft.QueueCredits, ft.ECNThreshold)
	case config.TopologyTree:
		fmt.Printf("topology: tree leaf=%d\n", cfg.Network.TreeLeafSize)
	}
	if cfg.Faults.Switch.Enabled() {
		fmt.Println(fault.NewSwitchPlan(cfg.Faults.Switch).Summary())
	}
	if cfg.Scenario.Enabled() {
		fmt.Printf("scenario: seed=%d domains=%q events=%q\n", cfg.Scenario.Seed,
			config.FormatScenarioDomains(cfg.Scenario.Domains), config.FormatScenarioEvents(cfg.Scenario.Events))
	}
	if h := cfg.Health; h.Enabled {
		fmt.Printf("health: period=%v suspectAfter=%v stabilize=%v\n",
			h.Period, h.SuspectAfter, h.StabilizeDelay)
		if h.SlowDetect {
			fmt.Printf("slow detect: threshold=%.2f recover=%.2f grace=%v\n",
				h.EffectiveSlowThreshold(), h.EffectiveSlowRecover(), h.EffectiveSlowGrace())
		}
	}
	if *reliable {
		r := cfg.NIC.Reliability
		rto := "static"
		if r.AdaptiveRTO {
			rto = "adaptive (Jacobson/Karels)"
		}
		fmt.Printf("reliability: window=%d rtoBase=%v rtoPerKB=%v maxBackoff=%v budget=%d rto=%s\n",
			r.WindowSize, r.RTOBase, r.RTOPerKB, r.MaxBackoff, r.RetryBudget, rto)
	}
	if cfg.NIC.E2EChecksum {
		fmt.Printf("e2e checksum: on latency=%v\n", cfg.NIC.E2EChecksumLatency)
	}
	if rc := cfg.NIC.Resources; rc.Enabled() || *capTrigFIFO > 0 {
		fmt.Printf("resources: triggerEntries=%d placeholders=%d cmdq=%d trigFIFO=%d eq=%d (0 = unbounded/default)\n",
			rc.TriggerEntries, rc.PlaceholderEntries, rc.CmdQueueDepth, cfg.NIC.TriggerFIFODepth, rc.EQDepth)
	}
	fmt.Println()
	runners := map[string]func() error{
		"fig1": func() error {
			series := bench.Figure1(cfg)
			fmt.Println(stats.RenderSeries("Figure 1: kernel launch latency (us) vs queued kernel commands",
				"queued", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{LogX: true, XLabel: "queued kernel commands", Title: "launch latency (us)"}))
			return writeCSV(*csvDir, "fig1", "queued", series)
		},
		"fig8": func() error {
			res := bench.Figure8Extended(cfg)
			fmt.Println(bench.RenderFigure8(res))
			fmt.Println(bench.RenderFigure8Bars(res))
			fmt.Println(bench.RenderFigure8Extended(res))
			return nil
		},
		"fig9": func() error {
			series := bench.Figure9(cfg)
			fmt.Println(stats.RenderSeries("Figure 9: Jacobi speedup vs HDN (2x2 nodes, per-iteration)",
				"N", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{LogX: true, XLabel: "local grid N", Title: "speedup vs HDN"}))
			return writeCSV(*csvDir, "fig9", "N", series)
		},
		"fig10": func() error {
			series := bench.Figure10(cfg)
			fmt.Println(stats.RenderSeries("Figure 10: 8MB Allreduce speedup vs CPU (strong scaling)",
				"nodes", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{XLabel: "nodes", Title: "speedup vs CPU"}))
			return writeCSV(*csvDir, "fig10", "nodes", series)
		},
		"fig11": func() error {
			results, err := bench.Figure11(cfg)
			if err != nil {
				return fmt.Errorf("fig11: %w", err)
			}
			fmt.Println(bench.RenderFigure11(results))
			return nil
		},
		"table1":    func() error { fmt.Println(bench.RenderTable1()); return nil },
		"table2":    func() error { fmt.Println(bench.RenderTable2(cfg)); return nil },
		"table3":    func() error { fmt.Println(bench.RenderTable3()); return nil },
		"ablations": func() error { fmt.Println(bench.RenderAblations(cfg)); return nil },
		"faults": func() error {
			// The fault-tolerance sweep arms its own injector per drop
			// rate; the -fault-* flags select the baseline configuration.
			fmt.Println(bench.RenderFaultTolerance(cfg))
			return nil
		},
		"resources": func() error {
			// The pressure sweep sets its own trigger-list caps per row;
			// the -cap-* flags select the baseline configuration.
			fmt.Println(bench.RenderResourcePressure(cfg))
			return nil
		},
		"crash": func() error {
			// The recovery sweep sets its own crash schedule per cell; the
			// -health-* flags select the heartbeat timing.
			fmt.Println(bench.RenderCrashRecovery(cfg))
			return nil
		},
		"partitions": func() error {
			// The partition sweep sets its own cut and degradation schedules
			// per cell; the -health-* flags select the heartbeat timing.
			fmt.Println(bench.RenderPartitions(cfg))
			return nil
		},
		"sdc": func() error {
			// The SDC sweep arms its own corruption schedule and e2e
			// checksum per cell; the -e2e-latency-ns and -health-* flags
			// select the baseline pricing and heartbeat timing.
			fmt.Println(bench.RenderSDC(cfg))
			return nil
		},
		"stragglers": func() error {
			// The straggler sweep arms its own fail-slow schedule and
			// detection timing per cell; the -slow-*/-hedge flags configure
			// standalone runs of the other experiments instead.
			fmt.Println(bench.RenderStragglers(cfg))
			return nil
		},
		"chaossearch": func() error {
			// Search mode samples -chaos-trials random composed scenarios and
			// shrinks the first auditor violation; replay mode reruns the
			// -scenario-* flags (a minimized reproducer) on every backend.
			if *chaosReplay {
				if !cfg.Scenario.Enabled() {
					return fmt.Errorf("chaossearch: -chaos-replay needs -scenario-domains/-scenario-events")
				}
				fmt.Println(bench.RenderChaosReplay(cfg, *chaosInject))
				return nil
			}
			fmt.Println(bench.RenderChaosSearch(cfg, bench.ChaosConfig{
				Seed:   *chaosSeed,
				Trials: *chaosTrials,
				Inject: *chaosInject,
			}))
			return nil
		},
		"perf": func() error {
			rep, err := bench.RunPerf(cfg, *perfPreset)
			if err != nil {
				return err
			}
			fmt.Println(rep.Render())
			var regressions []string
			if *benchBaseline != "" {
				base, err := bench.LoadPerfReport(*benchBaseline)
				if err != nil {
					return err
				}
				regressions = bench.ComparePerf(rep, base, *benchTolerance)
			}
			if *benchOut != "" {
				if err := rep.WriteJSON(*benchOut); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
			}
			if len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "perf regression:", r)
				}
				return fmt.Errorf("perf: %d experiment(s) regressed beyond %.0f%% vs %s",
					len(regressions), *benchTolerance*100, *benchBaseline)
			}
			return nil
		},
	}
	order := []string{"table1", "table2", "table3", "fig1", "fig8", "fig9", "fig10", "fig11", "ablations", "faults", "resources", "crash", "partitions", "sdc", "stragglers"}
	figures := []string{"fig1", "fig8", "fig9", "fig10", "fig11"}

	var names []string
	switch *exp {
	case "all":
		names = order
	case "figures":
		names = figures
	default:
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %v, perf, figures, or all; -list describes them)\n", *exp, order)
			return 2
		}
		names = []string{*exp}
	}
	for _, name := range names {
		if err := runners[name](); err != nil {
			fmt.Fprintln(os.Stderr, "gputn-bench:", err)
			return 1
		}
	}
	return 0
}
