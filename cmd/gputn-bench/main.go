// Command gputn-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gputn-bench -exp all
//	gputn-bench -exp fig10
//	gputn-bench -exp faults -fault-drop 0.05 -reliable
//
// Experiments: fig1, fig8, fig9, fig10, fig11, table1, table2, table3,
// ablations, faults, resources, all.
//
// The -fault-* flag group arms the deterministic fault injector for every
// experiment in the run; with all of them zero (the default) the fabric is
// lossless and results are bit-for-bit the fault-free numbers. The -cap-*
// flag group bounds NIC resources (trigger-list entries, relaxed-sync
// placeholders, command queue, trigger FIFO, event queues) the same way:
// all-zero keeps the unbounded seed behavior bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

// writeCSV saves a figure's series to <dir>/<name>.csv when dir is set.
func writeCSV(dir, name, xlabel string, series []*stats.Series) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := stats.WriteSeriesCSV(f, xlabel, series); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1|fig8|fig9|fig10|fig11|table1|table2|table3|ablations|faults|resources|all")
	csvDir := flag.String("csv", "", "also write figure data as CSV into this directory")

	faultSeed := flag.Int64("fault-seed", 42, "fault injector RNG seed")
	faultDrop := flag.Float64("fault-drop", 0, "per-packet drop probability [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "per-packet corruption probability [0,1]")
	flapNode := flag.Int("fault-flap-node", 0, "node whose links flap during the flap window")
	flapStartUS := flag.Float64("fault-flap-start-us", 0, "flap window start (us)")
	flapEndUS := flag.Float64("fault-flap-end-us", 0, "flap window end (us); 0 disables flapping")
	reliable := flag.Bool("reliable", false, "enable the NIC reliable-delivery layer (seq/ack/retransmit)")

	capTrig := flag.Int("cap-trigger-entries", 0, "trigger-list capacity (0 = paper default of 16)")
	capPlaceholders := flag.Int("cap-placeholders", 0, "relaxed-sync placeholder budget (0 = shared with trigger list)")
	capCmdQ := flag.Int("cap-cmdq", 0, "host command-queue depth; full queues backpressure posters (0 = unbounded)")
	capTrigFIFO := flag.Int("cap-trigger-fifo", 0, "trigger FIFO depth; overflow drops and counts (0 = unbounded)")
	capEQ := flag.Int("cap-eq", 0, "default event-queue capacity; overflow drops PTL_EQ_DROPPED-style (0 = unbounded)")
	flag.Parse()

	cfg := config.Default()
	cfg.Faults = config.FaultConfig{
		Seed:        *faultSeed,
		DropProb:    *faultDrop,
		CorruptProb: *faultCorrupt,
		FlapNode:    *flapNode,
		FlapStart:   sim.Time(*flapStartUS * float64(sim.Microsecond)),
		FlapEnd:     sim.Time(*flapEndUS * float64(sim.Microsecond)),
	}
	if *reliable {
		cfg.NIC.Reliability = config.DefaultReliability()
	}
	cfg.NIC.Resources = config.ResourceConfig{
		TriggerEntries:     *capTrig,
		PlaceholderEntries: *capPlaceholders,
		CmdQueueDepth:      *capCmdQ,
		EQDepth:            *capEQ,
	}
	if *capTrigFIFO > 0 {
		cfg.NIC.TriggerFIFODepth = *capTrigFIFO
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gputn-bench:", err)
		os.Exit(2)
	}
	if cfg.Faults.Enabled() && !*reliable {
		fmt.Fprintln(os.Stderr, "warning: faults armed without -reliable; lossy runs may lose messages and hang or skew results")
	}
	// Run header: every invocation states its fault schedule up front so
	// saved outputs are self-describing.
	fmt.Println(fault.NewInjector(cfg.Faults).Summary())
	if *reliable {
		r := cfg.NIC.Reliability
		fmt.Printf("reliability: window=%d rtoBase=%v rtoPerKB=%v maxBackoff=%v budget=%d\n",
			r.WindowSize, r.RTOBase, r.RTOPerKB, r.MaxBackoff, r.RetryBudget)
	}
	if rc := cfg.NIC.Resources; rc.Enabled() || *capTrigFIFO > 0 {
		fmt.Printf("resources: triggerEntries=%d placeholders=%d cmdq=%d trigFIFO=%d eq=%d (0 = unbounded/default)\n",
			rc.TriggerEntries, rc.PlaceholderEntries, rc.CmdQueueDepth, cfg.NIC.TriggerFIFODepth, rc.EQDepth)
	}
	fmt.Println()
	runners := map[string]func(){
		"fig1": func() {
			series := bench.Figure1(cfg)
			fmt.Println(stats.RenderSeries("Figure 1: kernel launch latency (us) vs queued kernel commands",
				"queued", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{LogX: true, XLabel: "queued kernel commands", Title: "launch latency (us)"}))
			writeCSV(*csvDir, "fig1", "queued", series)
		},
		"fig8": func() {
			res := bench.Figure8Extended(cfg)
			fmt.Println(bench.RenderFigure8(res))
			fmt.Println(bench.RenderFigure8Bars(res))
			fmt.Println(bench.RenderFigure8Extended(res))
		},
		"fig9": func() {
			series := bench.Figure9(cfg)
			fmt.Println(stats.RenderSeries("Figure 9: Jacobi speedup vs HDN (2x2 nodes, per-iteration)",
				"N", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{LogX: true, XLabel: "local grid N", Title: "speedup vs HDN"}))
			writeCSV(*csvDir, "fig9", "N", series)
		},
		"fig10": func() {
			series := bench.Figure10(cfg)
			fmt.Println(stats.RenderSeries("Figure 10: 8MB Allreduce speedup vs CPU (strong scaling)",
				"nodes", series))
			fmt.Println(stats.Plot(series, stats.PlotOptions{XLabel: "nodes", Title: "speedup vs CPU"}))
			writeCSV(*csvDir, "fig10", "nodes", series)
		},
		"fig11": func() {
			results, err := bench.Figure11(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig11:", err)
				os.Exit(1)
			}
			fmt.Println(bench.RenderFigure11(results))
		},
		"table1":    func() { fmt.Println(bench.RenderTable1()) },
		"table2":    func() { fmt.Println(bench.RenderTable2(cfg)) },
		"table3":    func() { fmt.Println(bench.RenderTable3()) },
		"ablations": func() { fmt.Println(bench.RenderAblations(cfg)) },
		"faults": func() {
			// The fault-tolerance sweep arms its own injector per drop
			// rate; the -fault-* flags select the baseline configuration.
			fmt.Println(bench.RenderFaultTolerance(cfg))
		},
		"resources": func() {
			// The pressure sweep sets its own trigger-list caps per row;
			// the -cap-* flags select the baseline configuration.
			fmt.Println(bench.RenderResourcePressure(cfg))
		},
	}
	order := []string{"table1", "table2", "table3", "fig1", "fig8", "fig9", "fig10", "fig11", "ablations", "faults", "resources"}

	if *exp == "all" {
		for _, name := range order {
			runners[name]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %v or all)\n", *exp, order)
		os.Exit(2)
	}
	run()
}
